"""The tcp shard executor: the window protocol over socket frames.

The mp executor (:func:`repro.sim.shard._run_mp`) caps out at one box —
its control pipes and shared-memory rings need a common kernel.  This
module runs the *same* barrier protocol between a **coordinator** (the
process that owns the :class:`~repro.sim.shard.ShardedScenario`) and K
**workers** connected over TCP, so shards can live on other machines
while every observable stays byte-identical to serial/mp (the
equivalence fuzz in ``tests/test_shard_equivalence.py`` proves it over
localhost).

Wire model
----------

Everything rides length-prefixed frames — ``(magic, kind, length)``
header (:data:`_WIRE_HEADER`) + payload — over one connection per
worker:

- **handshake**: the worker sends ``HELLO`` (protocol version + shard-id
  claim, JSON); the coordinator answers ``WELCOME`` (assigned shard, the
  scenario's config fingerprint, the coordinator's ``sys.path`` so
  workload classes pickled into the job resolve worker-side) and the
  pickled ``JOB`` (config, workload, lookahead, overlay snapshot, WAL
  cadence); the worker confirms with ``READY`` carrying the fingerprint
  it computed from the job it actually received.  A version or
  fingerprint mismatch is a loud :class:`SimulationError` — a skewed
  fleet must never reach the first window.  A duplicate (or out-of-
  range) shard claim gets an ``ERROR`` frame and its connection closed;
  the slot stays open for the real worker.
- **barriers**: each worker ``SYNC`` carries its window status plus the
  window's outboxes already encoded as :class:`ExchangeFrame` blobs (the
  PR 6 ``SoA1`` wire format, byte-for-byte — the same blobs the mp rings
  carry and the WAL logs).  The coordinator routes blobs between workers
  and answers per-shard ``DECISION`` frames (window start, inbound blobs
  in src-shard order, directory control records).  There is no
  worker-to-worker connection: the coordinator is the exchange fabric.
- **liveness**: each worker runs a ``PING`` heartbeat (every quarter of
  the read deadline) answered with ``PONG``; both sides treat heartbeat
  frames as pure liveness traffic and skip them when waiting for a
  protocol frame.  A long compute window (or an injected stall) keeps
  pinging and is *not* dead; a half-open socket stops pinging and is.
- **completion**: ``DONE`` returns the worker's payload (stats, clock,
  result, WAL tail); ``BYE`` releases the worker once results landed.

Robustness: :func:`connect_with_retry` retries the coordinator
connection on a capped exponential backoff (``REPRO_TCP_RETRIES``
attempts, optionally seeded-jittered so K recovering workers don't
reconnect in lockstep), and every read carries the
``REPRO_TCP_TIMEOUT_S`` deadline — a worker that dies mid-window (or a
half-open peer) surfaces as a loud ``worker N died mid-window``
:class:`SimulationError`, never a hang.

Self-healing (the fault plane's recovery side)
----------------------------------------------

When a run carries a WAL (``--wal``), a worker death mid-window is no
longer fleet-fatal: the coordinator's supervision loop quarantines the
dead connection, respawns the slot per its ``--hosts`` placement
(bounded by ``REPRO_TCP_MAX_RESPAWNS``), handshakes the replacement
with a ``RECOVER`` frame (``WELCOME`` plus the barrier to replay to,
fingerprint-checked the same way), and replays it to the current
barrier from the WAL's retained window records: the newcomer re-executes
the workload from scratch, every replayed sync is verified field-by-
field (and frame-blob byte-for-byte) against the log, and the logged
decisions are served back — so by the time it reaches the live barrier
it is bit-identical to the worker it replaced, and the run's final
digest cannot move.  Stale or duplicate connections that dial in during
recovery are rejected and counted as quarantined.  Without a WAL the
crash degrades gracefully to the pre-recovery behavior: a loud abort
naming the missing checkpoint.  All recovery accounting lands in the
``StatsCollector.faults`` family (never fingerprinted).

The WAL integrates unchanged: the coordinator owns the log
(:class:`~repro.sim.wal.WalSession` never leaves its process), workers
ship their probe blobs inside syncs, and the frame blobs the coordinator
routes are exactly the bytes the log records — so checkpoint/resume
works with remote workers, and a tcp log resumes under serial/mp and
vice versa (``executor`` and the tcp plumbing fields are excluded from
the config fingerprint).

Scalar exchange (``REPRO_SCALAR_EXCHANGE=1``) is rejected: like the WAL,
the tcp wire carries columnar frames only.

Trace stores ride along for free: workers execute through
:class:`~repro.sim.shard.ShardSimulator`, so a workload that attaches a
:class:`~repro.sim.tracestore.TraceStore` via ``attach_scenario`` gets
its per-window flush from the runtime's barrier hooks on tcp exactly as
on serial/mp — each worker writes its own shard's store file locally,
merged afterwards with :func:`~repro.sim.tracestore.merge_stores`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import select
import socket
import struct
import subprocess
import sys
import threading
import time
import traceback
from collections import Counter
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.envutil import env_float, env_int
from repro.errors import ConfigurationError, SimulationError
from repro.sim.exchange import ExchangeFrame, encode_outbound_blobs
from repro.sim.faults import FaultPlan, mix64, splitmix64
from repro.sim.wal import config_fingerprint

_INF = float("inf")

#: v2 added the liveness heartbeat (PING/PONG) and the RECOVER handshake
PROTOCOL_VERSION = 2

_WIRE_MAGIC = 0x52545031  # "RTP1"
#: magic, kind, payload length
_WIRE_HEADER = struct.Struct("<IBI")
#: refuse to allocate for absurd lengths — a garbage header must be
#: rejected loudly, not honoured with a gigabyte read
_MAX_FRAME = 1 << 30

_K_HELLO = 1
_K_WELCOME = 2
_K_JOB = 3
_K_READY = 4
_K_SYNC = 5
_K_DECISION = 6
_K_DONE = 7
_K_ERROR = 8
_K_ABORT = 9
_K_BYE = 10
#: WELCOME's recovery twin: same fields plus the barrier to replay to
_K_RECOVER = 11
#: worker-initiated liveness heartbeat and the coordinator's echo
_K_PING = 12
_K_PONG = 13

#: internal supervision-loop sentinel (never on the wire): a shard whose
#: connection died before delivering a protocol frame
_K_DEAD = -1

TCP_TIMEOUT_ENV = "REPRO_TCP_TIMEOUT_S"
TCP_RETRIES_ENV = "REPRO_TCP_RETRIES"
TCP_MAX_RESPAWNS_ENV = "REPRO_TCP_MAX_RESPAWNS"


def tcp_timeout_seconds() -> float:
    """Per-read socket deadline (and the fleet-assembly deadline): how
    long any endpoint waits on a peer before declaring it dead."""
    return env_float(
        TCP_TIMEOUT_ENV, 60.0, exclusive_minimum=0.0, error=SimulationError
    )


def tcp_retries() -> int:
    """Connection attempts a worker makes before giving up (>= 1)."""
    return env_int(TCP_RETRIES_ENV, 8, minimum=1, error=SimulationError)


def tcp_max_respawns() -> int:
    """Worker respawns the supervision loop may perform per run before a
    death becomes fleet-fatal (>= 0; 0 disables in-run recovery)."""
    return env_int(TCP_MAX_RESPAWNS_ENV, 3, minimum=0, error=SimulationError)


def backoff_schedule(
    retries: int,
    base: float = 0.05,
    cap: float = 1.0,
    jitter_seed: Optional[int] = None,
) -> List[float]:
    """The capped-exponential sleep schedule between connection attempts:
    ``base * 2^i`` clamped to ``cap``, one entry per retry gap.

    With ``jitter_seed`` each delay is scaled by a factor in [0.5, 1.0)
    drawn from the fault plane's splitmix64 stream — K recovering workers
    seeded differently spread their reconnects out instead of dialing in
    lockstep (the thundering herd), while the whole schedule stays
    reproducible from the seed.  ``None`` keeps the exact unjittered
    schedule.
    """
    delays = [min(cap, base * (2.0 ** i)) for i in range(max(0, retries - 1))]
    if jitter_seed is None:
        return delays
    state = jitter_seed
    jittered = []
    for delay in delays:
        state, value = splitmix64(state)
        jittered.append(delay * (0.5 + (value >> 11) / float(1 << 54)))
    return jittered


def fingerprint_digest(config: Any) -> str:
    """Hex digest of the scenario-identity fields a tcp fleet must agree
    on — the WAL's :func:`config_fingerprint` dict, canonically encoded.
    Exchanged at handshake so a worker running a different scenario (or a
    different code revision's idea of one) fails before the first window.
    """
    blob = json.dumps(
        config_fingerprint(config), sort_keys=True, default=repr
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def parse_address(spec: str) -> Tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``) to a connect/bind address."""
    host, _, port = spec.rpartition(":")
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise ConfigurationError(
            f"invalid tcp address {spec!r}; expected HOST:PORT"
        ) from None


def parse_hosts(spec: Optional[str], num_shards: int) -> List[str]:
    """The per-shard worker placement list from a ``--hosts`` spec.

    Comma-separated entries, one per shard (a single entry applies to
    every shard): ``local`` spawns a ``repro worker`` subprocess on this
    machine, ``wait`` expects a worker launched elsewhere (another box, a
    terminal, a test) to connect in, ``ssh:HOST`` spawns the worker over
    ssh against the coordinator's bind address.
    """
    if spec is None or not spec.strip():
        entries = ["local"]
    else:
        entries = [entry.strip() for entry in spec.split(",")]
    if any(not entry for entry in entries):
        raise ConfigurationError(
            f"tcp hosts spec {spec!r} has an empty entry"
        )
    for entry in entries:
        if entry not in ("local", "wait") and not entry.startswith("ssh:"):
            raise ConfigurationError(
                f"unknown tcp hosts entry {entry!r}; expected 'local', "
                "'wait', or 'ssh:HOST'"
            )
    if len(entries) == 1:
        entries = entries * num_shards
    if len(entries) != num_shards:
        raise ConfigurationError(
            f"tcp hosts spec names {len(entries)} workers but the run has "
            f"{num_shards} shards (give one entry, or exactly one per shard)"
        )
    return entries


# ---------------------------------------------------------------------------
# Frame I/O.
# ---------------------------------------------------------------------------


def _configure(sock: socket.socket, timeout: float) -> socket.socket:
    sock.settimeout(timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - stacks without TCP_NODELAY
        pass
    return sock


def send_frame(sock: socket.socket, kind: int, payload: bytes = b"") -> None:
    """One length-prefixed frame, written whole."""
    sock.sendall(
        _WIRE_HEADER.pack(_WIRE_MAGIC, kind, len(payload)) + payload
    )


def _read_exactly(sock: socket.socket, count: int, context: str) -> bytes:
    """Read ``count`` bytes or die loudly: EOF and the socket deadline
    both mean the peer is gone (dead process or half-open connection)."""
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            raise SimulationError(
                f"{context}: no data within the {sock.gettimeout():.0f}s "
                f"deadline ({TCP_TIMEOUT_ENV})"
            ) from None
        except OSError as exc:
            raise SimulationError(f"{context}: connection lost ({exc})") from None
        if not chunk:
            raise SimulationError(
                f"{context}: connection closed "
                f"({count - remaining} of {count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, context: str) -> Tuple[int, bytes]:
    """Read one frame; a bad magic or absurd length is a protocol error
    (garbage on the port), truncation/timeout a dead peer."""
    header = _read_exactly(sock, _WIRE_HEADER.size, context)
    magic, kind, length = _WIRE_HEADER.unpack(header)
    if magic != _WIRE_MAGIC:
        raise SimulationError(
            f"{context}: bad frame magic 0x{magic:08x} "
            "(not a repro tcp peer)"
        )
    if length > _MAX_FRAME:
        raise SimulationError(
            f"{context}: frame length {length} exceeds the "
            f"{_MAX_FRAME}-byte cap (corrupt header)"
        )
    return kind, _read_exactly(sock, length, context)


def connect_with_retry(
    host: str,
    port: int,
    retries: Optional[int] = None,
    timeout: Optional[float] = None,
    jitter_seed: Optional[int] = None,
) -> socket.socket:
    """Dial the coordinator, retrying refused/unreachable connections on
    the capped backoff schedule (seeded-jittered when ``jitter_seed`` is
    given) — workers routinely start before the coordinator's listener is
    up, and recovering workers must not reconnect in lockstep."""
    retries = tcp_retries() if retries is None else retries
    timeout = tcp_timeout_seconds() if timeout is None else timeout
    delays = backoff_schedule(retries, jitter_seed=jitter_seed)
    last_error: Optional[OSError] = None
    for attempt in range(retries):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            last_error = exc
            if attempt < len(delays):
                time.sleep(delays[attempt])
            continue
        return _configure(sock, timeout)
    raise SimulationError(
        f"could not connect to the tcp coordinator at {host}:{port} after "
        f"{retries} attempts ({TCP_RETRIES_ENV}); last error: {last_error}"
    )


# ---------------------------------------------------------------------------
# Worker endpoint.
# ---------------------------------------------------------------------------


class _Heartbeat(threading.Thread):
    """The worker's PING pump: one liveness frame every quarter of the
    read deadline, sharing the send lock with the protocol frames so a
    heartbeat can never interleave into a sync's bytes."""

    def __init__(
        self, sock: socket.socket, lock: threading.Lock, interval: float
    ) -> None:
        super().__init__(daemon=True, name="repro-tcp-heartbeat")
        self._sock = sock
        self._lock = lock
        self._interval = interval
        self._stopped = threading.Event()

    def run(self) -> None:
        while not self._stopped.wait(self._interval):
            try:
                with self._lock:
                    send_frame(self._sock, _K_PING)
            except Exception:
                # Socket gone (run over, or the coordinator died): the
                # main thread surfaces that loudly; the heartbeat just
                # stops beating.
                return

    def stop(self) -> None:
        self._stopped.set()


class _TcpChannel:
    """Worker-side barrier endpoint: syncs up, decisions down, exchange
    frames riding both as encoded blobs (the coordinator routes them)."""

    def __init__(
        self,
        sock: socket.socket,
        shard_id: int,
        num_shards: int,
        lock: Optional[threading.Lock] = None,
        injector: Any = None,
    ) -> None:
        self.exchange = Counter()
        self.faults = Counter()
        self.sock = sock
        self.shard_id = shard_id
        self.num_shards = num_shards
        #: shared with the heartbeat thread: all sends are serialized
        self.lock = lock if lock is not None else threading.Lock()
        #: fault plane (repro.sim.faults.FaultInjector) — wire faults
        #: replace this barrier's sync frame; None on clean and
        #: RECOVER-ed workers
        self.injector = injector
        self._barrier = 0

    def _recv_protocol(self, context: str) -> Tuple[int, bytes]:
        """Next non-heartbeat frame; every PONG skipped refreshes the
        read deadline, so a worker parked behind a slow (or recovering)
        sibling shard never starves while its heartbeat is answered."""
        while True:
            kind, payload = recv_frame(self.sock, context)
            if kind != _K_PONG:
                return kind, payload

    def sync(
        self, outbound, next_time, last_time, executed, requests, extras=None
    ):
        from repro.sim.shard import _Decision

        barrier = self._barrier
        self._barrier += 1
        blobs, min_outbound = encode_outbound_blobs(
            outbound, barrier, self.exchange
        )
        payload = pickle.dumps(
            (next_time, last_time, executed, min_outbound, requests,
             extras, blobs),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fault = (
            self.injector.wire_fault(barrier)
            if self.injector is not None
            else None
        )
        if fault is not None:
            # Mangle this barrier's sync on the wire, then die without
            # releasing the lock — no heartbeat may follow the bad bytes.
            with self.lock:
                if fault == "corrupt":
                    self.sock.sendall(
                        _WIRE_HEADER.pack(0x0BADF00D, _K_SYNC, len(payload))
                        + payload
                    )
                else:  # truncate: promise more bytes than ever arrive
                    self.sock.sendall(
                        _WIRE_HEADER.pack(
                            _WIRE_MAGIC, _K_SYNC, len(payload) + 64
                        )
                        + payload
                    )
                os._exit(3)
        with self.lock:
            send_frame(self.sock, _K_SYNC, payload)
        kind, payload = self._recv_protocol(
            f"shard {self.shard_id} waiting for the window decision at "
            f"barrier {barrier}",
        )
        if kind == _K_ABORT:
            return _Decision(error=payload.decode("utf-8", "replace"))
        if kind != _K_DECISION:
            raise SimulationError(
                f"shard {self.shard_id}: expected a decision frame at "
                f"barrier {barrier}, got kind {kind}"
            )
        window_start, global_last, total_executed, inbound, control = (
            pickle.loads(payload)
        )
        inbox: List[ExchangeFrame] = []
        for src_shard, blob in inbound:
            frame, frame_barrier = ExchangeFrame.decode(blob)
            if frame_barrier != barrier:
                raise SimulationError(
                    f"shard {self.shard_id}: exchange frame from shard "
                    f"{src_shard} tagged barrier {frame_barrier}, "
                    f"expected {barrier}"
                )
            inbox.append(frame)
        return _Decision(
            window_start=window_start,
            global_last=global_last,
            total_executed=total_executed,
            inbox=inbox,
            control=control,
        )

    def finish(self, payload: Any) -> None:
        with self.lock:
            send_frame(
                self.sock,
                _K_DONE,
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            )

    def fail(self, message: str) -> None:
        with self.lock:
            send_frame(self.sock, _K_ERROR, message.encode("utf-8"))

    def _frames_from_outbound(self, outbound):  # pragma: no cover
        # _Channel API parity; the tcp channel always encodes to blobs.
        raise NotImplementedError


def worker_main(
    host: str,
    port: int,
    shard: int = -1,
    retries: Optional[int] = None,
    timeout: Optional[float] = None,
    backoff_seed: int = 0,
) -> int:
    """One tcp shard worker: connect, handshake, run the window protocol.

    The ``repro worker`` CLI entry point; exit code 0 on a clean run (the
    coordinator's BYE, or its disappearance after our DONE landed), 1 on
    any failure — which is also reported to the coordinator as an ERROR
    frame when the socket still stands.

    ``backoff_seed`` seeds the reconnect jitter (mixed with the shard
    claim, so siblings spread out); the coordinator passes the fault
    plane's seed through so recovery timing stays reproducible.
    """
    timeout = tcp_timeout_seconds() if timeout is None else timeout
    sock = connect_with_retry(
        host, port, retries=retries, timeout=timeout,
        jitter_seed=mix64(backoff_seed, shard),
    )
    heartbeat: Optional[_Heartbeat] = None
    try:
        send_frame(
            sock,
            _K_HELLO,
            json.dumps(
                {"version": PROTOCOL_VERSION, "shard": shard}
            ).encode("utf-8"),
        )
        context = f"worker (claiming shard {shard}) awaiting welcome"
        kind, payload = recv_frame(sock, context)
        if kind == _K_ERROR:
            raise SimulationError(
                "tcp coordinator rejected this worker: "
                + payload.decode("utf-8", "replace")
            )
        if kind not in (_K_WELCOME, _K_RECOVER):
            raise SimulationError(f"{context}: unexpected frame kind {kind}")
        # RECOVER is WELCOME's twin for a respawned slot: same fields and
        # checks, plus the barrier the coordinator will replay us to.  A
        # recovering worker runs the workload exactly as a fresh one —
        # replay is transparent (the coordinator serves logged decisions)
        # — but must NOT re-arm the fault injector, or the fault that
        # killed its predecessor would fire again and recovery would loop.
        recovering = kind == _K_RECOVER
        welcome = json.loads(payload.decode("utf-8"))
        if welcome.get("version") != PROTOCOL_VERSION:
            message = (
                f"tcp protocol version mismatch: coordinator speaks "
                f"{welcome.get('version')}, this worker speaks "
                f"{PROTOCOL_VERSION}"
            )
            send_frame(sock, _K_ERROR, message.encode("utf-8"))
            raise SimulationError(message)
        shard_id = int(welcome["shard"])
        # The coordinator's import roots: workload/config classes pickled
        # into the job must resolve here even when this worker was started
        # bare (test fixtures, bench modules).  Appended, never prepended —
        # the worker's own environment wins on conflicts.
        for entry in welcome.get("sys_path", ()):
            if entry and entry not in sys.path:
                sys.path.append(entry)
        kind, payload = recv_frame(
            sock, f"worker (shard {shard_id}) awaiting job"
        )
        if kind != _K_JOB:
            raise SimulationError(
                f"worker (shard {shard_id}): expected the job frame, "
                f"got kind {kind}"
            )
        job = pickle.loads(payload)
        fingerprint = fingerprint_digest(job["config"])
        if fingerprint != welcome.get("fingerprint"):
            message = (
                f"config fingerprint mismatch: coordinator announced "
                f"{welcome.get('fingerprint')}, the job decodes to "
                f"{fingerprint} — coordinator and worker disagree about "
                "the scenario (code revision skew?)"
            )
            send_frame(sock, _K_ERROR, message.encode("utf-8"))
            raise SimulationError(message)
        send_frame(
            sock,
            _K_READY,
            json.dumps(
                {"shard": shard_id, "fingerprint": fingerprint}
            ).encode("utf-8"),
        )

        from repro.sim.shard import _ShardRuntime, _worker_body

        plan = FaultPlan.parse(getattr(job["config"], "faults", None))
        injector = None
        if plan is not None and not recovering:
            injector = plan.injector(
                shard_id,
                job["num_shards"],
                blackhole_s=2.0 * timeout + 1.0,
            )
        lock = threading.Lock()
        channel = _TcpChannel(
            sock, shard_id, job["num_shards"], lock=lock, injector=injector
        )
        if injector is not None:
            injector.counters = channel.faults
        heartbeat = _Heartbeat(sock, lock, max(0.05, timeout / 4.0))
        if injector is not None:
            injector.bind_heartbeat(heartbeat)
        heartbeat.start()
        try:
            runtime = _ShardRuntime(
                shard_id,
                job["num_shards"],
                channel,
                job["lookahead"],
                snapshot=job.get("snapshot"),
            )
            if injector is not None:
                runtime.fault_hook = injector.at_barrier
            channel.finish(
                _worker_body(
                    job["config"], job["workload"], runtime,
                    job.get("wal_cadence", 0),
                )
            )
        except BaseException:
            try:
                channel.fail(traceback.format_exc())
            except Exception:
                pass
            return 1
        try:
            # The coordinator's BYE confirms the results landed; its
            # disappearance after our DONE is equally fine.  PONGs for
            # in-flight heartbeats may arrive first — pure liveness, skip.
            channel._recv_protocol(
                f"worker (shard {shard_id}) awaiting bye"
            )
        except SimulationError:
            pass
        return 0
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        try:
            sock.close()
        except OSError:  # pragma: no cover - close races
            pass


# ---------------------------------------------------------------------------
# Coordinator.
# ---------------------------------------------------------------------------


class TcpCoordinator:
    """The listening side of a tcp run: spawns/accepts K workers, drives
    the barrier loop, routes exchange blobs, owns the directory plane and
    the WAL — the :func:`repro.sim.shard._run_mp` control flow with the
    pipes and rings replaced by one socket per worker, plus a supervision
    loop that answers heartbeats and (on WAL runs) respawns and replays
    workers that die mid-window."""

    def __init__(
        self,
        config: Any,
        num_shards: int,
        lookahead: float,
        plane: Any = None,
        wal: Any = None,
    ) -> None:
        self.config = config
        self.num_shards = num_shards
        self.lookahead = lookahead
        self.plane = plane
        self.wal = wal
        self.timeout = tcp_timeout_seconds()
        self.hosts = parse_hosts(
            getattr(config, "tcp_hosts", None), num_shards
        )
        self.listener: Optional[socket.socket] = None
        self.address: Optional[Tuple[str, int]] = None
        self.connections: List[Optional[socket.socket]] = (
            [None] * num_shards
        )
        self.processes: List[Tuple[int, subprocess.Popen]] = []
        #: connections refused during assembly (garbage, duplicate claims)
        self.rejected = 0
        #: fault/recovery accounting: merged into the run's
        #: ``StatsCollector.faults`` family (never fingerprinted)
        self.faults = Counter()
        #: worker deaths observed while not awaited — surfaced when the
        #: supervision loop next awaits that shard
        self._failed: Dict[int, str] = {}
        self._respawn_budget = tcp_max_respawns()
        #: reconnect-jitter base handed to spawned workers: the fault
        #: plane's seed when one is configured, so recovery timing is
        #: reproducible from the same knob that schedules the faults
        plan = FaultPlan.parse(getattr(config, "faults", None))
        self._backoff_seed = plan.seed if plan is not None else 0

    # -- fleet assembly ------------------------------------------------------

    def bind(self) -> Tuple[str, int]:
        """Open the listener; returns the bound (host, port) — resolved
        even when ``tcp_port=0`` asked for an ephemeral port."""
        if self.listener is not None:
            return self.address
        host = getattr(self.config, "tcp_host", "127.0.0.1") or "127.0.0.1"
        port = getattr(self.config, "tcp_port", 0) or 0
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(self.num_shards + 4)
        self.listener = listener
        self.address = listener.getsockname()[:2]
        return self.address

    def _worker_command(self, shard_id: int) -> List[str]:
        host, port = self.address
        return [
            "-m", "repro.cli", "worker",
            "--connect", f"{host}:{port}",
            "--shard", str(shard_id),
            "--backoff-seed", str(self._backoff_seed),
        ]

    def _spawn_one(self, shard_id: int, entry: str) -> None:
        if entry == "wait":
            return
        if entry == "local":
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                dict.fromkeys(self._sys_path())
            )
            process = subprocess.Popen(
                [sys.executable] + self._worker_command(shard_id),
                env=env,
            )
        else:  # ssh:HOST — the remote python must have repro installed
            process = subprocess.Popen(
                ["ssh", entry[len("ssh:"):], "python3"]
                + self._worker_command(shard_id)
            )
        self.processes.append((shard_id, process))

    def _spawn_workers(self) -> None:
        for shard_id, entry in enumerate(self.hosts):
            self._spawn_one(shard_id, entry)

    @staticmethod
    def _sys_path() -> List[str]:
        return [entry or os.getcwd() for entry in sys.path]

    def _check_spawned(self, unclaimed: set) -> None:
        for shard_id, process in self.processes:
            code = process.poll()
            if code is not None and code != 0 and shard_id in unclaimed:
                raise SimulationError(
                    f"tcp worker process for shard {shard_id} exited with "
                    f"code {code} before completing its handshake"
                )

    def _accept_workers(self, job_blob: bytes, fingerprint: str) -> None:
        unclaimed = set(range(self.num_shards))
        sys_path = self._sys_path()
        deadline = time.monotonic() + self.timeout
        self.listener.settimeout(0.2)
        while unclaimed:
            self._check_spawned(unclaimed)
            if time.monotonic() > deadline:
                raise SimulationError(
                    f"tcp coordinator timed out after {self.timeout:.0f}s "
                    f"({TCP_TIMEOUT_ENV}) waiting for workers to claim "
                    f"shards {sorted(unclaimed)}"
                )
            try:
                conn, _ = self.listener.accept()
            except socket.timeout:
                continue
            _configure(conn, self.timeout)
            self._handshake(conn, unclaimed, job_blob, fingerprint, sys_path)

    def _reject(self, conn: socket.socket, message: Optional[str]) -> None:
        if message is not None:
            try:
                send_frame(conn, _K_ERROR, message.encode("utf-8"))
            except OSError:
                pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - close races
            pass
        self.rejected += 1

    def _handshake(
        self,
        conn: socket.socket,
        unclaimed: set,
        job_blob: bytes,
        fingerprint: str,
        sys_path: List[str],
        recover_barrier: Optional[int] = None,
    ) -> None:
        """One connection through HELLO → WELCOME/RECOVER → JOB → READY.

        During recovery (``recover_barrier`` set) ``unclaimed`` holds
        only the dead slot: any other claim — a stale duplicate of a
        live worker included — is rejected and quarantined.
        """
        context = "tcp coordinator handshaking a new connection"
        try:
            kind, payload = recv_frame(conn, context)
            hello = json.loads(payload.decode("utf-8"))
        except (SimulationError, ValueError, UnicodeDecodeError):
            # Garbage, truncation, or silence: not a worker — drop the
            # connection, keep the slot open.
            self._reject(conn, None)
            if recover_barrier is not None:
                self.faults["quarantined_connections"] += 1
            return
        if kind != _K_HELLO or not isinstance(hello, dict):
            self._reject(conn, "expected a HELLO frame")
            if recover_barrier is not None:
                self.faults["quarantined_connections"] += 1
            return
        version = hello.get("version")
        if version != PROTOCOL_VERSION:
            message = (
                f"tcp protocol version mismatch: worker speaks {version}, "
                f"coordinator speaks {PROTOCOL_VERSION}"
            )
            self._reject(conn, message)
            raise SimulationError(message)
        claim = int(hello.get("shard", -1))
        if claim == -1 and unclaimed:
            claim = min(unclaimed)
        if claim not in unclaimed:
            self._reject(
                conn,
                f"shard id {claim} is already claimed or out of range "
                f"(open slots: {sorted(unclaimed)})",
            )
            if recover_barrier is not None:
                self.faults["quarantined_connections"] += 1
            return
        welcome = {
            "version": PROTOCOL_VERSION,
            "shard": claim,
            "fingerprint": fingerprint,
            "sys_path": sys_path,
        }
        if recover_barrier is None:
            send_frame(
                conn, _K_WELCOME, json.dumps(welcome).encode("utf-8")
            )
        else:
            welcome["barrier"] = recover_barrier
            send_frame(
                conn, _K_RECOVER, json.dumps(welcome).encode("utf-8")
            )
        send_frame(conn, _K_JOB, job_blob)
        context = f"tcp coordinator awaiting READY from shard {claim}"
        kind, payload = recv_frame(conn, context)
        if kind == _K_ERROR:
            raise SimulationError(
                f"tcp worker for shard {claim} failed its handshake: "
                + payload.decode("utf-8", "replace")
            )
        if kind != _K_READY:
            self._reject(conn, f"expected READY, got frame kind {kind}")
            return
        ready = json.loads(payload.decode("utf-8"))
        if ready.get("fingerprint") != fingerprint:
            message = (
                f"config fingerprint mismatch: worker for shard {claim} "
                f"computed {ready.get('fingerprint')}, coordinator has "
                f"{fingerprint} — the fleet disagrees about the scenario"
            )
            self._reject(conn, message)
            raise SimulationError(message)
        unclaimed.discard(claim)
        self.connections[claim] = conn

    # -- the supervision pump ------------------------------------------------

    def _quarantine_connection(self, shard_id: int) -> None:
        """Close and forget a dead (or stale) worker connection so no
        later read can confuse its leftovers with live traffic."""
        conn = self.connections[shard_id]
        self.connections[shard_id] = None
        if conn is not None:
            try:
                conn.close()
            except Exception:  # pragma: no cover - close races
                pass

    def _service_heartbeats(self) -> None:
        """Drain ready PINGs without blocking — called from wait loops
        (recovery accept) so parked workers keep getting PONGs while the
        coordinator is busy elsewhere."""
        live = {
            conn: shard_id
            for shard_id, conn in enumerate(self.connections)
            if conn is not None
        }
        if not live:
            return
        try:
            readable, _, _ = select.select(list(live), [], [], 0.0)
        except (OSError, ValueError):  # pragma: no cover - close races
            return
        for conn in readable:
            shard_id = live[conn]
            try:
                kind, _payload = recv_frame(
                    conn, f"tcp coordinator servicing shard {shard_id}"
                )
            except SimulationError as exc:
                self._failed[shard_id] = (
                    f"worker {shard_id} died mid-window "
                    f"(no sync/done/error message: {exc})"
                )
                self._quarantine_connection(shard_id)
                continue
            if kind == _K_PING:
                self.faults["heartbeats"] += 1
                try:
                    send_frame(conn, _K_PONG)
                except OSError:
                    pass
            else:
                self._failed[shard_id] = (
                    f"worker {shard_id} sent unexpected frame kind {kind} "
                    "out of turn"
                )
                self._quarantine_connection(shard_id)

    def _await_frames(
        self, awaiting: Set[int], barrier: int
    ) -> Dict[int, Tuple[int, Any]]:
        """One protocol frame from every awaited shard, pumping the whole
        fleet's heartbeats meanwhile.

        Replaces per-connection blocking reads with a select loop over
        every live connection: PINGs (from anyone) are answered with
        PONGs and refresh that shard's activity clock; a shard that
        produces *no* frame at all for the read deadline — or whose
        connection yields EOF/garbage — comes back as the ``_K_DEAD``
        sentinel with the died-mid-window message, for the supervision
        loop to recover or surface.  Failures on non-awaited shards are
        stashed in ``_failed`` until that shard is awaited.
        """
        results: Dict[int, Tuple[int, Any]] = {}
        pending: Set[int] = set()
        for shard_id in awaiting:
            if self.connections[shard_id] is None:
                results[shard_id] = (
                    _K_DEAD,
                    self._failed.pop(
                        shard_id,
                        f"worker {shard_id} died mid-window "
                        "(connection already quarantined)",
                    ),
                )
            else:
                pending.add(shard_id)
        last_seen = {shard_id: time.monotonic() for shard_id in pending}
        while pending:
            live = {
                conn: shard_id
                for shard_id, conn in enumerate(self.connections)
                if conn is not None
            }
            for shard_id in sorted(pending):
                if self.connections[shard_id] is None:
                    pending.discard(shard_id)
                    results[shard_id] = (
                        _K_DEAD,
                        self._failed.pop(
                            shard_id,
                            f"worker {shard_id} died mid-window "
                            "(connection already quarantined)",
                        ),
                    )
            if not pending:
                break
            try:
                readable, _, _ = select.select(list(live), [], [], 0.2)
            except (OSError, ValueError):  # pragma: no cover - close races
                readable = []
            now = time.monotonic()
            for conn in readable:
                shard_id = live[conn]
                if self.connections[shard_id] is not conn:
                    continue  # quarantined earlier in this pass
                try:
                    kind, payload = recv_frame(
                        conn,
                        f"tcp coordinator waiting on shard {shard_id} "
                        f"at barrier {barrier}",
                    )
                except SimulationError as exc:
                    message = (
                        f"worker {shard_id} died mid-window "
                        f"(no sync/done/error message: {exc})"
                    )
                    self._quarantine_connection(shard_id)
                    if shard_id in pending:
                        pending.discard(shard_id)
                        results[shard_id] = (_K_DEAD, message)
                    else:
                        self._failed[shard_id] = message
                    continue
                if kind == _K_PING:
                    self.faults["heartbeats"] += 1
                    if shard_id in last_seen:
                        last_seen[shard_id] = now
                    try:
                        send_frame(conn, _K_PONG)
                    except OSError:
                        pass
                    continue
                if shard_id not in pending:
                    self._failed[shard_id] = (
                        f"worker {shard_id} sent unexpected frame kind "
                        f"{kind} out of turn"
                    )
                    self._quarantine_connection(shard_id)
                    continue
                pending.discard(shard_id)
                if kind not in (_K_SYNC, _K_DONE, _K_ERROR):
                    results[shard_id] = (
                        _K_ERROR,
                        (
                            f"worker {shard_id} sent unexpected frame kind "
                            f"{kind} at barrier {barrier}"
                        ).encode("utf-8"),
                    )
                else:
                    results[shard_id] = (kind, payload)
            now = time.monotonic()
            for shard_id in sorted(pending):
                if now - last_seen[shard_id] > self.timeout:
                    # Nothing — not even a heartbeat — inside the
                    # deadline: a half-open socket.  A live shard in a
                    # long compute window keeps pinging and never lands
                    # here.
                    message = (
                        f"worker {shard_id} died mid-window "
                        "(no sync/done/error message: tcp coordinator "
                        f"waiting on shard {shard_id} at barrier {barrier}: "
                        f"no data within the {self.timeout:.0f}s deadline "
                        f"({TCP_TIMEOUT_ENV}))"
                    )
                    self._quarantine_connection(shard_id)
                    pending.discard(shard_id)
                    results[shard_id] = (_K_DEAD, message)
        return results

    # -- in-run recovery -----------------------------------------------------

    def _recover(
        self,
        shard_id: int,
        reason: str,
        job_blob: bytes,
        fingerprint: str,
        barrier: int,
    ) -> None:
        """Respawn a dead worker's slot and replay it to ``barrier``.

        Raises (after aborting the fleet) when recovery is impossible:
        no WAL to replay from — the graceful degradation to the
        pre-recovery loud abort, naming the missing checkpoint — or the
        respawn budget is spent, or the replacement itself fails.
        """
        self.faults["worker_deaths"] += 1
        if self.wal is None:
            failure = (
                f"{reason}; no WAL checkpoint to replay a replacement "
                "worker from — run with --wal PATH to enable in-run "
                "recovery"
            )
            self._abort_all(failure)
            raise SimulationError(f"tcp shard worker failed:\n{failure}")
        if self._respawn_budget <= 0:
            failure = (
                f"{reason}; worker respawn budget exhausted "
                f"({TCP_MAX_RESPAWNS_ENV}={tcp_max_respawns()})"
            )
            self._abort_all(failure)
            raise SimulationError(f"tcp shard worker failed:\n{failure}")
        self._respawn_budget -= 1
        try:
            self._spawn_one(shard_id, self.hosts[shard_id])
            self._accept_recovered(shard_id, job_blob, fingerprint, barrier)
            self._replay_prefix(shard_id, barrier)
        except SimulationError as exc:
            self._abort_all(str(exc))
            raise
        self.faults["respawns"] += 1

    def _accept_recovered(
        self,
        shard_id: int,
        job_blob: bytes,
        fingerprint: str,
        barrier: int,
    ) -> None:
        """Accept the replacement worker for one dead slot.

        Only ``shard_id`` is open: garbage and stale/duplicate claims
        are rejected (and counted quarantined) like during assembly,
        version/fingerprint mismatches stay run-fatal.  Heartbeats from
        the surviving fleet are serviced between accept attempts so
        parked workers never starve while the slot refills.
        """
        unclaimed = {shard_id}
        sys_path = self._sys_path()
        deadline = time.monotonic() + self.timeout
        self.listener.settimeout(0.2)
        # Poll only the replacement process (the predecessor's corpse is
        # still in self.processes with its non-zero exit code — that is
        # exactly the death being recovered, not a new failure).
        spawned = (
            self.processes[-1]
            if self.processes
            and self.processes[-1][0] == shard_id
            and self.hosts[shard_id] != "wait"
            else None
        )
        while unclaimed:
            self._service_heartbeats()
            if spawned is not None:
                code = spawned[1].poll()
                if code is not None and code != 0:
                    raise SimulationError(
                        f"respawned tcp worker for shard {shard_id} exited "
                        f"with code {code} before completing its RECOVER "
                        "handshake"
                    )
            if time.monotonic() > deadline:
                raise SimulationError(
                    f"tcp coordinator timed out after {self.timeout:.0f}s "
                    f"({TCP_TIMEOUT_ENV}) waiting for a replacement worker "
                    f"for shard {shard_id}"
                )
            try:
                conn, _ = self.listener.accept()
            except socket.timeout:
                continue
            _configure(conn, self.timeout)
            self._handshake(
                conn, unclaimed, job_blob, fingerprint, sys_path,
                recover_barrier=barrier,
            )

    def _replay_prefix(self, shard_id: int, barrier: int) -> None:
        """Re-feed the recovered worker the logged prefix up to (not
        including) ``barrier``.

        The newcomer re-executes the workload from scratch and cannot
        tell replay from live windows: its syncs are verified against
        the WAL's retained records (scalars field-by-field, frame blobs
        byte-for-byte — the same discipline as resume) and its decisions
        are rebuilt from the log.  Its outbound frames are discarded —
        the original recipients got them from the first incarnation.
        """
        for replay_barrier in range(barrier):
            record = self.wal.window_record(replay_barrier)
            kind, payload = self._await_frames(
                {shard_id}, replay_barrier
            )[shard_id]
            if kind == _K_DEAD:
                raise SimulationError(
                    f"replacement worker for shard {shard_id} died during "
                    f"WAL replay at window {replay_barrier}: {payload}"
                )
            if kind == _K_ERROR:
                raise SimulationError(
                    f"replacement worker for shard {shard_id} failed during "
                    f"WAL replay at window {replay_barrier}:\n"
                    + payload.decode("utf-8", "replace")
                )
            if kind != _K_SYNC:
                raise SimulationError(
                    f"replacement worker for shard {shard_id} sent frame "
                    f"kind {kind} at replay window {replay_barrier}, "
                    "expected a sync"
                )
            self._verify_replay(
                shard_id, replay_barrier, record, pickle.loads(payload)
            )
            inbound = [
                (src_shard, record.frames[(src_shard, shard_id)])
                for src_shard in range(self.num_shards)
                if (src_shard, shard_id) in record.frames
            ]
            decision = pickle.dumps(
                (record.window_start, record.global_last,
                 record.total_executed, inbound, record.control),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            send_frame(self.connections[shard_id], _K_DECISION, decision)
            self.faults["replayed_windows"] += 1

    def _verify_replay(
        self, shard_id: int, barrier: int, record: Any, status: tuple
    ) -> None:
        """A replayed sync must be bit-identical to what the log says the
        first incarnation sent — any drift means the replacement is not
        the worker it claims to be, and the run must die before the drift
        can touch the digest."""
        next_time, last_time, executed, _min_outbound, requests, extras, \
            blobs = status
        logged = record.statuses[shard_id]
        for name, live_value, index in (
            ("next event time", next_time, 0),
            ("last event time", last_time, 1),
            ("executed count", executed, 2),
            ("control requests", requests, 3),
        ):
            if logged[index] != live_value:
                raise SimulationError(
                    f"RECOVER divergence at window {barrier}: shard "
                    f"{shard_id} {name} differs from the WAL "
                    f"(logged {logged[index]!r}, replayed {live_value!r})"
                )
        logged_extras = logged[4]
        if (logged_extras is None) != (extras is None) or (
            logged_extras is not None and logged_extras != extras
        ):
            raise SimulationError(
                f"RECOVER divergence at window {barrier}: shard {shard_id} "
                "probe extras differ from the WAL"
            )
        logged_dsts = sorted(
            dst for (src, dst) in record.frames if src == shard_id
        )
        if sorted(dst for dst, _ in blobs) != logged_dsts:
            raise SimulationError(
                f"RECOVER divergence at window {barrier}: shard {shard_id} "
                f"exchange frame set differs from the WAL (logged "
                f"{logged_dsts}, replayed {sorted(d for d, _ in blobs)})"
            )
        for dst_shard, blob in blobs:
            if record.frames.get((shard_id, dst_shard)) != blob:
                raise SimulationError(
                    f"RECOVER divergence at window {barrier}: shard "
                    f"{shard_id} exchange frame bytes to shard {dst_shard} "
                    "differ from the WAL"
                )

    def _collect_round(
        self, barrier: int, job_blob: bytes, fingerprint: str
    ) -> Dict[int, Tuple[int, Any]]:
        """One barrier's worth of protocol frames from every shard,
        recovering dead workers in place when the WAL allows it."""
        awaiting = set(range(self.num_shards))
        round_messages: Dict[int, Tuple[int, Any]] = {}
        while awaiting:
            results = self._await_frames(awaiting, barrier)
            awaiting = set()
            for shard_id in sorted(results):
                kind, payload = results[shard_id]
                if kind != _K_DEAD:
                    round_messages[shard_id] = (kind, payload)
                    continue
                # _recover raises (after aborting the fleet) when the
                # death cannot be healed; otherwise the slot is live and
                # replayed to this barrier — re-await its live frame.
                self._recover(
                    shard_id, payload, job_blob, fingerprint, barrier
                )
                awaiting.add(shard_id)
        return round_messages

    # -- the barrier loop ----------------------------------------------------

    def run(self, workload: Any) -> Tuple[List[tuple], int, Counter]:
        """Assemble the fleet and drive the run; mirrors ``_run_mp``'s
        coordinator loop message for message, with the supervision pump
        wrapped around every read."""
        self.bind()
        wal = self.wal
        plane = self.plane
        num_shards = self.num_shards
        job_blob = pickle.dumps(
            {
                "config": self.config,
                "workload": workload,
                "num_shards": num_shards,
                "lookahead": self.lookahead,
                "snapshot": plane.snapshot if plane is not None else None,
                "wal_cadence": wal.cursor_every if wal is not None else 0,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fingerprint = fingerprint_digest(self.config)
        payloads: List[Optional[tuple]] = [None] * num_shards
        windows = 0
        try:
            self._spawn_workers()
            self._accept_workers(job_blob, fingerprint)
            while True:
                round_messages = self._collect_round(
                    windows, job_blob, fingerprint
                )
                kinds = {kind for kind, _ in round_messages.values()}
                if _K_ERROR in kinds:
                    failure = next(
                        round_messages[shard_id][1].decode("utf-8", "replace")
                        for shard_id in sorted(round_messages)
                        if round_messages[shard_id][0] == _K_ERROR
                    )
                    self._abort_synced(round_messages, failure)
                    raise SimulationError(
                        f"tcp shard worker failed:\n{failure}"
                    )
                if kinds == {_K_DONE}:
                    for shard_id, (_, payload) in round_messages.items():
                        payloads[shard_id] = pickle.loads(payload)
                    break
                if kinds != {_K_SYNC}:
                    failure = (
                        "shard workers diverged (mixed done/sync at one "
                        "barrier)"
                    )
                    self._abort_synced(round_messages, failure)
                    raise SimulationError(failure)

                statuses = [
                    pickle.loads(round_messages[shard_id][1])
                    for shard_id in range(num_shards)
                ]
                all_requests = []
                wal_statuses = []
                blob_grid: List[Dict[int, bytes]] = []
                frame_blobs: Dict[Tuple[int, int], bytes] = {}
                window_start = _INF
                global_last = -_INF
                total_executed = 0
                for shard_id, status in enumerate(statuses):
                    (next_time, last_time, executed, min_outbound, requests,
                     extras, blobs) = status
                    window_start = min(window_start, next_time, min_outbound)
                    global_last = max(global_last, last_time)
                    total_executed += executed
                    all_requests.append(requests)
                    blob_grid.append(dict(blobs))
                    if wal is not None:
                        wal_statuses.append(
                            (next_time, last_time, executed, requests, extras)
                        )
                        for dst_shard, blob in blobs:
                            frame_blobs[(shard_id, dst_shard)] = blob
                control: List[tuple] = []
                if plane is not None:
                    from repro.sim.shard import _agreed_requests

                    plane.handle_requests(_agreed_requests(all_requests))
                    window_start = min(window_start, plane.next_time())
                    if window_start != _INF:
                        control = plane.advance(window_start + self.lookahead)
                if wal is not None:
                    try:
                        wal.on_window(
                            barrier=windows,
                            window_start=window_start,
                            global_last=global_last,
                            total_executed=total_executed,
                            statuses=wal_statuses,
                            frames=frame_blobs,
                            control=control,
                        )
                    except SimulationError as exc:
                        self._abort_all(str(exc))
                        raise
                windows += 1
                for shard_id in range(num_shards):
                    inbound = [
                        (src_shard, blob_grid[src_shard][shard_id])
                        for src_shard in range(num_shards)
                        if shard_id in blob_grid[src_shard]
                    ]
                    decision = pickle.dumps(
                        (window_start, global_last, total_executed, inbound,
                         control),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    conn = self.connections[shard_id]
                    if conn is None:
                        continue
                    try:
                        send_frame(conn, _K_DECISION, decision)
                    except OSError:
                        # The worker died after syncing; its next read slot
                        # surfaces the loud died-mid-window error (or the
                        # supervision loop recovers it).
                        pass
        finally:
            self.close()
        return payloads, windows, self.faults

    def _abort_synced(
        self, round_messages: Dict[int, Tuple[int, Any]], failure: str
    ) -> None:
        # Per-connection guards: one already-dead socket must never mask
        # the original failure being reported.
        for shard_id, (kind, _) in round_messages.items():
            conn = self.connections[shard_id]
            if kind != _K_SYNC or conn is None:
                continue
            try:
                send_frame(conn, _K_ABORT, failure.encode("utf-8"))
            except Exception:
                pass

    def _abort_all(self, failure: str) -> None:
        for conn in self.connections:
            if conn is None:
                continue
            try:
                send_frame(conn, _K_ABORT, failure.encode("utf-8"))
            except Exception:
                pass

    def close(self) -> None:
        """Full teardown: release every worker, close every socket, reap
        every spawned process — no orphan sockets, no zombie workers.
        Every step is individually guarded: a broken pipe mid-teardown
        must never mask the error that triggered it."""
        for conn in self.connections:
            if conn is None:
                continue
            try:
                send_frame(conn, _K_BYE)
            except Exception:
                pass
            try:
                conn.close()
            except Exception:  # pragma: no cover - close races
                pass
        if self.listener is not None:
            try:
                self.listener.close()
            except Exception:  # pragma: no cover - close races
                pass
        for _shard_id, process in self.processes:
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - hung worker
                process.terminate()
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()


def run_tcp(
    config: Any,
    workload: Any,
    num_shards: int,
    lookahead: float,
    plane: Any = None,
    use_frames: bool = True,
    wal: Any = None,
) -> Tuple[List[tuple], int, Counter]:
    """The ``executor="tcp"`` runner (the :func:`_run_mp` signature)."""
    if not use_frames:
        raise ConfigurationError(
            "the tcp executor ships columnar exchange frames as its wire "
            "payload; it cannot run with REPRO_SCALAR_EXCHANGE=1"
        )
    return TcpCoordinator(
        config, num_shards, lookahead, plane=plane, wal=wal
    ).run(workload)
