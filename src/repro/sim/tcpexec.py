"""The tcp shard executor: the window protocol over socket frames.

The mp executor (:func:`repro.sim.shard._run_mp`) caps out at one box —
its control pipes and shared-memory rings need a common kernel.  This
module runs the *same* barrier protocol between a **coordinator** (the
process that owns the :class:`~repro.sim.shard.ShardedScenario`) and K
**workers** connected over TCP, so shards can live on other machines
while every observable stays byte-identical to serial/mp (the
equivalence fuzz in ``tests/test_shard_equivalence.py`` proves it over
localhost).

Wire model
----------

Everything rides length-prefixed frames — ``(magic, kind, length)``
header (:data:`_WIRE_HEADER`) + payload — over one connection per
worker:

- **handshake**: the worker sends ``HELLO`` (protocol version + shard-id
  claim, JSON); the coordinator answers ``WELCOME`` (assigned shard, the
  scenario's config fingerprint, the coordinator's ``sys.path`` so
  workload classes pickled into the job resolve worker-side) and the
  pickled ``JOB`` (config, workload, lookahead, overlay snapshot, WAL
  cadence); the worker confirms with ``READY`` carrying the fingerprint
  it computed from the job it actually received.  A version or
  fingerprint mismatch is a loud :class:`SimulationError` — a skewed
  fleet must never reach the first window.  A duplicate (or out-of-
  range) shard claim gets an ``ERROR`` frame and its connection closed;
  the slot stays open for the real worker.
- **barriers**: each worker ``SYNC`` carries its window status plus the
  window's outboxes already encoded as :class:`ExchangeFrame` blobs (the
  PR 6 ``SoA1`` wire format, byte-for-byte — the same blobs the mp rings
  carry and the WAL logs).  The coordinator routes blobs between workers
  and answers per-shard ``DECISION`` frames (window start, inbound blobs
  in src-shard order, directory control records).  There is no
  worker-to-worker connection: the coordinator is the exchange fabric.
- **completion**: ``DONE`` returns the worker's payload (stats, clock,
  result, WAL tail); ``BYE`` releases the worker once results landed.

Robustness: :func:`connect_with_retry` retries the coordinator
connection on a capped exponential backoff (``REPRO_TCP_RETRIES``
attempts), and every read carries the ``REPRO_TCP_TIMEOUT_S`` deadline —
a worker that dies mid-window (or a half-open peer) surfaces as a loud
``worker N died mid-window`` :class:`SimulationError` at the next read,
never a hang, and the coordinator aborts the rest of the fleet and tears
down every socket and spawned process on any failure.

The WAL integrates unchanged: the coordinator owns the log
(:class:`~repro.sim.wal.WalSession` never leaves its process), workers
ship their probe blobs inside syncs, and the frame blobs the coordinator
routes are exactly the bytes the log records — so checkpoint/resume
works with remote workers, and a tcp log resumes under serial/mp and
vice versa (``executor`` and the tcp plumbing fields are excluded from
the config fingerprint).

Scalar exchange (``REPRO_SCALAR_EXCHANGE=1``) is rejected: like the WAL,
the tcp wire carries columnar frames only.

Trace stores ride along for free: workers execute through
:class:`~repro.sim.shard.ShardSimulator`, so a workload that attaches a
:class:`~repro.sim.tracestore.TraceStore` via ``attach_scenario`` gets
its per-window flush from the runtime's barrier hooks on tcp exactly as
on serial/mp — each worker writes its own shard's store file locally,
merged afterwards with :func:`~repro.sim.tracestore.merge_stores`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import socket
import struct
import subprocess
import sys
import time
import traceback
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from repro.envutil import env_float, env_int
from repro.errors import ConfigurationError, SimulationError
from repro.sim.exchange import ExchangeFrame, encode_outbound_blobs
from repro.sim.wal import config_fingerprint

_INF = float("inf")

PROTOCOL_VERSION = 1

_WIRE_MAGIC = 0x52545031  # "RTP1"
#: magic, kind, payload length
_WIRE_HEADER = struct.Struct("<IBI")
#: refuse to allocate for absurd lengths — a garbage header must be
#: rejected loudly, not honoured with a gigabyte read
_MAX_FRAME = 1 << 30

_K_HELLO = 1
_K_WELCOME = 2
_K_JOB = 3
_K_READY = 4
_K_SYNC = 5
_K_DECISION = 6
_K_DONE = 7
_K_ERROR = 8
_K_ABORT = 9
_K_BYE = 10

TCP_TIMEOUT_ENV = "REPRO_TCP_TIMEOUT_S"
TCP_RETRIES_ENV = "REPRO_TCP_RETRIES"


def tcp_timeout_seconds() -> float:
    """Per-read socket deadline (and the fleet-assembly deadline): how
    long any endpoint waits on a peer before declaring it dead."""
    return env_float(
        TCP_TIMEOUT_ENV, 60.0, exclusive_minimum=0.0, error=SimulationError
    )


def tcp_retries() -> int:
    """Connection attempts a worker makes before giving up (>= 1)."""
    return env_int(TCP_RETRIES_ENV, 8, minimum=1, error=SimulationError)


def backoff_schedule(
    retries: int, base: float = 0.05, cap: float = 1.0
) -> List[float]:
    """The capped-exponential sleep schedule between connection attempts:
    ``base * 2^i`` clamped to ``cap``, one entry per retry gap."""
    return [min(cap, base * (2.0 ** i)) for i in range(max(0, retries - 1))]


def fingerprint_digest(config: Any) -> str:
    """Hex digest of the scenario-identity fields a tcp fleet must agree
    on — the WAL's :func:`config_fingerprint` dict, canonically encoded.
    Exchanged at handshake so a worker running a different scenario (or a
    different code revision's idea of one) fails before the first window.
    """
    blob = json.dumps(
        config_fingerprint(config), sort_keys=True, default=repr
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def parse_address(spec: str) -> Tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT``) to a connect/bind address."""
    host, _, port = spec.rpartition(":")
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise ConfigurationError(
            f"invalid tcp address {spec!r}; expected HOST:PORT"
        ) from None


def parse_hosts(spec: Optional[str], num_shards: int) -> List[str]:
    """The per-shard worker placement list from a ``--hosts`` spec.

    Comma-separated entries, one per shard (a single entry applies to
    every shard): ``local`` spawns a ``repro worker`` subprocess on this
    machine, ``wait`` expects a worker launched elsewhere (another box, a
    terminal, a test) to connect in, ``ssh:HOST`` spawns the worker over
    ssh against the coordinator's bind address.
    """
    if spec is None or not spec.strip():
        entries = ["local"]
    else:
        entries = [entry.strip() for entry in spec.split(",")]
    if any(not entry for entry in entries):
        raise ConfigurationError(
            f"tcp hosts spec {spec!r} has an empty entry"
        )
    for entry in entries:
        if entry not in ("local", "wait") and not entry.startswith("ssh:"):
            raise ConfigurationError(
                f"unknown tcp hosts entry {entry!r}; expected 'local', "
                "'wait', or 'ssh:HOST'"
            )
    if len(entries) == 1:
        entries = entries * num_shards
    if len(entries) != num_shards:
        raise ConfigurationError(
            f"tcp hosts spec names {len(entries)} workers but the run has "
            f"{num_shards} shards (give one entry, or exactly one per shard)"
        )
    return entries


# ---------------------------------------------------------------------------
# Frame I/O.
# ---------------------------------------------------------------------------


def _configure(sock: socket.socket, timeout: float) -> socket.socket:
    sock.settimeout(timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - stacks without TCP_NODELAY
        pass
    return sock


def send_frame(sock: socket.socket, kind: int, payload: bytes = b"") -> None:
    """One length-prefixed frame, written whole."""
    sock.sendall(
        _WIRE_HEADER.pack(_WIRE_MAGIC, kind, len(payload)) + payload
    )


def _read_exactly(sock: socket.socket, count: int, context: str) -> bytes:
    """Read ``count`` bytes or die loudly: EOF and the socket deadline
    both mean the peer is gone (dead process or half-open connection)."""
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            raise SimulationError(
                f"{context}: no data within the {sock.gettimeout():.0f}s "
                f"deadline ({TCP_TIMEOUT_ENV})"
            ) from None
        except OSError as exc:
            raise SimulationError(f"{context}: connection lost ({exc})") from None
        if not chunk:
            raise SimulationError(
                f"{context}: connection closed "
                f"({count - remaining} of {count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, context: str) -> Tuple[int, bytes]:
    """Read one frame; a bad magic or absurd length is a protocol error
    (garbage on the port), truncation/timeout a dead peer."""
    header = _read_exactly(sock, _WIRE_HEADER.size, context)
    magic, kind, length = _WIRE_HEADER.unpack(header)
    if magic != _WIRE_MAGIC:
        raise SimulationError(
            f"{context}: bad frame magic 0x{magic:08x} "
            "(not a repro tcp peer)"
        )
    if length > _MAX_FRAME:
        raise SimulationError(
            f"{context}: frame length {length} exceeds the "
            f"{_MAX_FRAME}-byte cap (corrupt header)"
        )
    return kind, _read_exactly(sock, length, context)


def connect_with_retry(
    host: str,
    port: int,
    retries: Optional[int] = None,
    timeout: Optional[float] = None,
) -> socket.socket:
    """Dial the coordinator, retrying refused/unreachable connections on
    the capped backoff schedule — workers routinely start before the
    coordinator's listener is up."""
    retries = tcp_retries() if retries is None else retries
    timeout = tcp_timeout_seconds() if timeout is None else timeout
    delays = backoff_schedule(retries)
    last_error: Optional[OSError] = None
    for attempt in range(retries):
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            last_error = exc
            if attempt < len(delays):
                time.sleep(delays[attempt])
            continue
        return _configure(sock, timeout)
    raise SimulationError(
        f"could not connect to the tcp coordinator at {host}:{port} after "
        f"{retries} attempts ({TCP_RETRIES_ENV}); last error: {last_error}"
    )


# ---------------------------------------------------------------------------
# Worker endpoint.
# ---------------------------------------------------------------------------


class _TcpChannel:
    """Worker-side barrier endpoint: syncs up, decisions down, exchange
    frames riding both as encoded blobs (the coordinator routes them)."""

    def __init__(
        self, sock: socket.socket, shard_id: int, num_shards: int
    ) -> None:
        self.exchange = Counter()
        self.sock = sock
        self.shard_id = shard_id
        self.num_shards = num_shards
        self._barrier = 0

    def sync(
        self, outbound, next_time, last_time, executed, requests, extras=None
    ):
        from repro.sim.shard import _Decision

        barrier = self._barrier
        self._barrier += 1
        blobs, min_outbound = encode_outbound_blobs(
            outbound, barrier, self.exchange
        )
        send_frame(
            self.sock,
            _K_SYNC,
            pickle.dumps(
                (next_time, last_time, executed, min_outbound, requests,
                 extras, blobs),
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        )
        kind, payload = recv_frame(
            self.sock,
            f"shard {self.shard_id} waiting for the window decision at "
            f"barrier {barrier}",
        )
        if kind == _K_ABORT:
            return _Decision(error=payload.decode("utf-8", "replace"))
        if kind != _K_DECISION:
            raise SimulationError(
                f"shard {self.shard_id}: expected a decision frame at "
                f"barrier {barrier}, got kind {kind}"
            )
        window_start, global_last, total_executed, inbound, control = (
            pickle.loads(payload)
        )
        inbox: List[ExchangeFrame] = []
        for src_shard, blob in inbound:
            frame, frame_barrier = ExchangeFrame.decode(blob)
            if frame_barrier != barrier:
                raise SimulationError(
                    f"shard {self.shard_id}: exchange frame from shard "
                    f"{src_shard} tagged barrier {frame_barrier}, "
                    f"expected {barrier}"
                )
            inbox.append(frame)
        return _Decision(
            window_start=window_start,
            global_last=global_last,
            total_executed=total_executed,
            inbox=inbox,
            control=control,
        )

    def finish(self, payload: Any) -> None:
        send_frame(
            self.sock,
            _K_DONE,
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def fail(self, message: str) -> None:
        send_frame(self.sock, _K_ERROR, message.encode("utf-8"))

    def _frames_from_outbound(self, outbound):  # pragma: no cover
        # _Channel API parity; the tcp channel always encodes to blobs.
        raise NotImplementedError


def worker_main(
    host: str,
    port: int,
    shard: int = -1,
    retries: Optional[int] = None,
    timeout: Optional[float] = None,
) -> int:
    """One tcp shard worker: connect, handshake, run the window protocol.

    The ``repro worker`` CLI entry point; exit code 0 on a clean run (the
    coordinator's BYE, or its disappearance after our DONE landed), 1 on
    any failure — which is also reported to the coordinator as an ERROR
    frame when the socket still stands.
    """
    sock = connect_with_retry(host, port, retries=retries, timeout=timeout)
    try:
        send_frame(
            sock,
            _K_HELLO,
            json.dumps(
                {"version": PROTOCOL_VERSION, "shard": shard}
            ).encode("utf-8"),
        )
        context = f"worker (claiming shard {shard}) awaiting welcome"
        kind, payload = recv_frame(sock, context)
        if kind == _K_ERROR:
            raise SimulationError(
                "tcp coordinator rejected this worker: "
                + payload.decode("utf-8", "replace")
            )
        if kind != _K_WELCOME:
            raise SimulationError(f"{context}: unexpected frame kind {kind}")
        welcome = json.loads(payload.decode("utf-8"))
        if welcome.get("version") != PROTOCOL_VERSION:
            message = (
                f"tcp protocol version mismatch: coordinator speaks "
                f"{welcome.get('version')}, this worker speaks "
                f"{PROTOCOL_VERSION}"
            )
            send_frame(sock, _K_ERROR, message.encode("utf-8"))
            raise SimulationError(message)
        shard_id = int(welcome["shard"])
        # The coordinator's import roots: workload/config classes pickled
        # into the job must resolve here even when this worker was started
        # bare (test fixtures, bench modules).  Appended, never prepended —
        # the worker's own environment wins on conflicts.
        for entry in welcome.get("sys_path", ()):
            if entry and entry not in sys.path:
                sys.path.append(entry)
        kind, payload = recv_frame(
            sock, f"worker (shard {shard_id}) awaiting job"
        )
        if kind != _K_JOB:
            raise SimulationError(
                f"worker (shard {shard_id}): expected the job frame, "
                f"got kind {kind}"
            )
        job = pickle.loads(payload)
        fingerprint = fingerprint_digest(job["config"])
        if fingerprint != welcome.get("fingerprint"):
            message = (
                f"config fingerprint mismatch: coordinator announced "
                f"{welcome.get('fingerprint')}, the job decodes to "
                f"{fingerprint} — coordinator and worker disagree about "
                "the scenario (code revision skew?)"
            )
            send_frame(sock, _K_ERROR, message.encode("utf-8"))
            raise SimulationError(message)
        send_frame(
            sock,
            _K_READY,
            json.dumps(
                {"shard": shard_id, "fingerprint": fingerprint}
            ).encode("utf-8"),
        )

        from repro.sim.shard import _ShardRuntime, _worker_body

        channel = _TcpChannel(sock, shard_id, job["num_shards"])
        try:
            runtime = _ShardRuntime(
                shard_id,
                job["num_shards"],
                channel,
                job["lookahead"],
                snapshot=job.get("snapshot"),
            )
            channel.finish(
                _worker_body(
                    job["config"], job["workload"], runtime,
                    job.get("wal_cadence", 0),
                )
            )
        except BaseException:
            try:
                channel.fail(traceback.format_exc())
            except Exception:
                pass
            return 1
        try:
            # The coordinator's BYE confirms the results landed; its
            # disappearance after our DONE is equally fine.
            recv_frame(sock, f"worker (shard {shard_id}) awaiting bye")
        except SimulationError:
            pass
        return 0
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - close races
            pass


# ---------------------------------------------------------------------------
# Coordinator.
# ---------------------------------------------------------------------------


class TcpCoordinator:
    """The listening side of a tcp run: spawns/accepts K workers, drives
    the barrier loop, routes exchange blobs, owns the directory plane and
    the WAL — the :func:`repro.sim.shard._run_mp` control flow with the
    pipes and rings replaced by one socket per worker."""

    def __init__(
        self,
        config: Any,
        num_shards: int,
        lookahead: float,
        plane: Any = None,
        wal: Any = None,
    ) -> None:
        self.config = config
        self.num_shards = num_shards
        self.lookahead = lookahead
        self.plane = plane
        self.wal = wal
        self.timeout = tcp_timeout_seconds()
        self.hosts = parse_hosts(
            getattr(config, "tcp_hosts", None), num_shards
        )
        self.listener: Optional[socket.socket] = None
        self.address: Optional[Tuple[str, int]] = None
        self.connections: List[Optional[socket.socket]] = (
            [None] * num_shards
        )
        self.processes: List[Tuple[int, subprocess.Popen]] = []
        #: connections refused during assembly (garbage, duplicate claims)
        self.rejected = 0

    # -- fleet assembly ------------------------------------------------------

    def bind(self) -> Tuple[str, int]:
        """Open the listener; returns the bound (host, port) — resolved
        even when ``tcp_port=0`` asked for an ephemeral port."""
        if self.listener is not None:
            return self.address
        host = getattr(self.config, "tcp_host", "127.0.0.1") or "127.0.0.1"
        port = getattr(self.config, "tcp_port", 0) or 0
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(self.num_shards + 4)
        self.listener = listener
        self.address = listener.getsockname()[:2]
        return self.address

    def _worker_command(self, shard_id: int) -> List[str]:
        host, port = self.address
        return [
            "-m", "repro.cli", "worker",
            "--connect", f"{host}:{port}",
            "--shard", str(shard_id),
        ]

    def _spawn_workers(self) -> None:
        for shard_id, entry in enumerate(self.hosts):
            if entry == "wait":
                continue
            if entry == "local":
                env = dict(os.environ)
                env["PYTHONPATH"] = os.pathsep.join(
                    dict.fromkeys(self._sys_path())
                )
                process = subprocess.Popen(
                    [sys.executable] + self._worker_command(shard_id),
                    env=env,
                )
            else:  # ssh:HOST — the remote python must have repro installed
                process = subprocess.Popen(
                    ["ssh", entry[len("ssh:"):], "python3"]
                    + self._worker_command(shard_id)
                )
            self.processes.append((shard_id, process))

    @staticmethod
    def _sys_path() -> List[str]:
        return [entry or os.getcwd() for entry in sys.path]

    def _check_spawned(self, unclaimed: set) -> None:
        for shard_id, process in self.processes:
            code = process.poll()
            if code is not None and code != 0 and shard_id in unclaimed:
                raise SimulationError(
                    f"tcp worker process for shard {shard_id} exited with "
                    f"code {code} before completing its handshake"
                )

    def _accept_workers(self, job_blob: bytes, fingerprint: str) -> None:
        unclaimed = set(range(self.num_shards))
        sys_path = self._sys_path()
        deadline = time.monotonic() + self.timeout
        self.listener.settimeout(0.2)
        while unclaimed:
            self._check_spawned(unclaimed)
            if time.monotonic() > deadline:
                raise SimulationError(
                    f"tcp coordinator timed out after {self.timeout:.0f}s "
                    f"({TCP_TIMEOUT_ENV}) waiting for workers to claim "
                    f"shards {sorted(unclaimed)}"
                )
            try:
                conn, _ = self.listener.accept()
            except socket.timeout:
                continue
            _configure(conn, self.timeout)
            self._handshake(conn, unclaimed, job_blob, fingerprint, sys_path)

    def _reject(self, conn: socket.socket, message: Optional[str]) -> None:
        if message is not None:
            try:
                send_frame(conn, _K_ERROR, message.encode("utf-8"))
            except OSError:
                pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - close races
            pass
        self.rejected += 1

    def _handshake(
        self,
        conn: socket.socket,
        unclaimed: set,
        job_blob: bytes,
        fingerprint: str,
        sys_path: List[str],
    ) -> None:
        context = "tcp coordinator handshaking a new connection"
        try:
            kind, payload = recv_frame(conn, context)
            hello = json.loads(payload.decode("utf-8"))
        except (SimulationError, ValueError, UnicodeDecodeError):
            # Garbage, truncation, or silence: not a worker — drop the
            # connection, keep the slot open.
            self._reject(conn, None)
            return
        if kind != _K_HELLO or not isinstance(hello, dict):
            self._reject(conn, "expected a HELLO frame")
            return
        version = hello.get("version")
        if version != PROTOCOL_VERSION:
            message = (
                f"tcp protocol version mismatch: worker speaks {version}, "
                f"coordinator speaks {PROTOCOL_VERSION}"
            )
            self._reject(conn, message)
            raise SimulationError(message)
        claim = int(hello.get("shard", -1))
        if claim == -1 and unclaimed:
            claim = min(unclaimed)
        if claim not in unclaimed:
            self._reject(
                conn,
                f"shard id {claim} is already claimed or out of range "
                f"(open slots: {sorted(unclaimed)})",
            )
            return
        send_frame(
            conn,
            _K_WELCOME,
            json.dumps(
                {
                    "version": PROTOCOL_VERSION,
                    "shard": claim,
                    "fingerprint": fingerprint,
                    "sys_path": sys_path,
                }
            ).encode("utf-8"),
        )
        send_frame(conn, _K_JOB, job_blob)
        context = f"tcp coordinator awaiting READY from shard {claim}"
        kind, payload = recv_frame(conn, context)
        if kind == _K_ERROR:
            raise SimulationError(
                f"tcp worker for shard {claim} failed its handshake: "
                + payload.decode("utf-8", "replace")
            )
        if kind != _K_READY:
            self._reject(conn, f"expected READY, got frame kind {kind}")
            return
        ready = json.loads(payload.decode("utf-8"))
        if ready.get("fingerprint") != fingerprint:
            message = (
                f"config fingerprint mismatch: worker for shard {claim} "
                f"computed {ready.get('fingerprint')}, coordinator has "
                f"{fingerprint} — the fleet disagrees about the scenario"
            )
            self._reject(conn, message)
            raise SimulationError(message)
        unclaimed.discard(claim)
        self.connections[claim] = conn

    # -- the barrier loop ----------------------------------------------------

    def run(self, workload: Any) -> Tuple[List[tuple], int]:
        """Assemble the fleet and drive the run; mirrors ``_run_mp``'s
        coordinator loop message for message."""
        self.bind()
        wal = self.wal
        plane = self.plane
        num_shards = self.num_shards
        job_blob = pickle.dumps(
            {
                "config": self.config,
                "workload": workload,
                "num_shards": num_shards,
                "lookahead": self.lookahead,
                "snapshot": plane.snapshot if plane is not None else None,
                "wal_cadence": wal.cursor_every if wal is not None else 0,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fingerprint = fingerprint_digest(self.config)
        payloads: List[Optional[tuple]] = [None] * num_shards
        windows = 0
        try:
            self._spawn_workers()
            self._accept_workers(job_blob, fingerprint)
            while True:
                round_messages: Dict[int, Tuple[int, Any]] = {}
                for shard_id, conn in enumerate(self.connections):
                    try:
                        kind, payload = recv_frame(
                            conn,
                            f"tcp coordinator waiting on shard {shard_id} "
                            f"at barrier {windows}",
                        )
                    except SimulationError as exc:
                        kind, payload = _K_ERROR, (
                            f"worker {shard_id} died mid-window "
                            f"(no sync/done/error message: {exc})"
                        ).encode("utf-8")
                    if kind not in (_K_SYNC, _K_DONE, _K_ERROR):
                        kind, payload = _K_ERROR, (
                            f"worker {shard_id} sent unexpected frame kind "
                            f"{kind} at barrier {windows}"
                        ).encode("utf-8")
                    round_messages[shard_id] = (kind, payload)
                kinds = {kind for kind, _ in round_messages.values()}
                if _K_ERROR in kinds:
                    failure = next(
                        payload.decode("utf-8", "replace")
                        for kind, payload in round_messages.values()
                        if kind == _K_ERROR
                    )
                    self._abort_synced(round_messages, failure)
                    raise SimulationError(
                        f"tcp shard worker failed:\n{failure}"
                    )
                if kinds == {_K_DONE}:
                    for shard_id, (_, payload) in round_messages.items():
                        payloads[shard_id] = pickle.loads(payload)
                    break
                if kinds != {_K_SYNC}:
                    failure = (
                        "shard workers diverged (mixed done/sync at one "
                        "barrier)"
                    )
                    self._abort_synced(round_messages, failure)
                    raise SimulationError(failure)

                statuses = [
                    pickle.loads(round_messages[shard_id][1])
                    for shard_id in range(num_shards)
                ]
                all_requests = []
                wal_statuses = []
                blob_grid: List[Dict[int, bytes]] = []
                frame_blobs: Dict[Tuple[int, int], bytes] = {}
                window_start = _INF
                global_last = -_INF
                total_executed = 0
                for shard_id, status in enumerate(statuses):
                    (next_time, last_time, executed, min_outbound, requests,
                     extras, blobs) = status
                    window_start = min(window_start, next_time, min_outbound)
                    global_last = max(global_last, last_time)
                    total_executed += executed
                    all_requests.append(requests)
                    blob_grid.append(dict(blobs))
                    if wal is not None:
                        wal_statuses.append(
                            (next_time, last_time, executed, requests, extras)
                        )
                        for dst_shard, blob in blobs:
                            frame_blobs[(shard_id, dst_shard)] = blob
                control: List[tuple] = []
                if plane is not None:
                    from repro.sim.shard import _agreed_requests

                    plane.handle_requests(_agreed_requests(all_requests))
                    window_start = min(window_start, plane.next_time())
                    if window_start != _INF:
                        control = plane.advance(window_start + self.lookahead)
                if wal is not None:
                    try:
                        wal.on_window(
                            barrier=windows,
                            window_start=window_start,
                            global_last=global_last,
                            total_executed=total_executed,
                            statuses=wal_statuses,
                            frames=frame_blobs,
                            control=control,
                        )
                    except SimulationError as exc:
                        self._abort_all(str(exc))
                        raise
                windows += 1
                for shard_id in range(num_shards):
                    inbound = [
                        (src_shard, blob_grid[src_shard][shard_id])
                        for src_shard in range(num_shards)
                        if shard_id in blob_grid[src_shard]
                    ]
                    decision = pickle.dumps(
                        (window_start, global_last, total_executed, inbound,
                         control),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    try:
                        send_frame(
                            self.connections[shard_id], _K_DECISION, decision
                        )
                    except OSError:
                        # The worker died after syncing; its next read slot
                        # surfaces the loud died-mid-window error.
                        pass
        finally:
            self.close()
        return payloads, windows

    def _abort_synced(
        self, round_messages: Dict[int, Tuple[int, Any]], failure: str
    ) -> None:
        for shard_id, (kind, _) in round_messages.items():
            if kind == _K_SYNC:
                try:
                    send_frame(
                        self.connections[shard_id], _K_ABORT,
                        failure.encode("utf-8"),
                    )
                except OSError:
                    pass

    def _abort_all(self, failure: str) -> None:
        for conn in self.connections:
            if conn is not None:
                try:
                    send_frame(conn, _K_ABORT, failure.encode("utf-8"))
                except OSError:
                    pass

    def close(self) -> None:
        """Full teardown: release every worker, close every socket, reap
        every spawned process — no orphan sockets, no zombie workers."""
        for conn in self.connections:
            if conn is not None:
                try:
                    send_frame(conn, _K_BYE)
                except OSError:
                    pass
                try:
                    conn.close()
                except OSError:  # pragma: no cover - close races
                    pass
        if self.listener is not None:
            try:
                self.listener.close()
            except OSError:  # pragma: no cover - close races
                pass
        for _shard_id, process in self.processes:
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - hung worker
                process.terminate()
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()


def run_tcp(
    config: Any,
    workload: Any,
    num_shards: int,
    lookahead: float,
    plane: Any = None,
    use_frames: bool = True,
    wal: Any = None,
) -> Tuple[List[tuple], int]:
    """The ``executor="tcp"`` runner (the :func:`_run_mp` signature)."""
    if not use_frames:
        raise ConfigurationError(
            "the tcp executor ships columnar exchange frames as its wire "
            "payload; it cannot run with REPRO_SCALAR_EXCHANGE=1"
        )
    return TcpCoordinator(
        config, num_shards, lookahead, plane=plane, wal=wal
    ).run(workload)
