"""Statistics collection and activity logging (P2PDMT's "Log activities" /
"Visualize statistics" boxes).

:class:`StatsCollector` is the single sink every component reports into:
message counts and bytes by type, named counters, and time-stamped series.
Experiments read their cost columns from here.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.messages import Message


@dataclass
class LogEntry:
    """One time-stamped activity record."""

    time: float
    actor: int
    action: str
    detail: str = ""


class ActivityLog:
    """Append-only activity log with simple filtering."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._entries: List[LogEntry] = []
        self._capacity = capacity

    def record(self, time: float, actor: int, action: str, detail: str = "") -> None:
        if self._capacity is not None and len(self._entries) >= self._capacity:
            self._entries.pop(0)
        self._entries.append(LogEntry(time, actor, action, detail))

    def entries(
        self, action: Optional[str] = None, actor: Optional[int] = None
    ) -> List[LogEntry]:
        result = self._entries
        if action is not None:
            result = [e for e in result if e.action == action]
        if actor is not None:
            result = [e for e in result if e.actor == actor]
        return list(result)

    def __len__(self) -> int:
        return len(self._entries)


class StatsCollector:
    """Counters, per-message-type traffic accounting, and time series."""

    def __init__(self) -> None:
        self.messages_by_type: Counter = Counter()
        self.bytes_by_type: Counter = Counter()
        self.wire_bytes_by_type: Counter = Counter()
        self.hops_by_type: Counter = Counter()
        self.counters: Counter = Counter()
        self.series: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
        self.per_peer_bytes: Counter = Counter()
        self.per_peer_wire_bytes: Counter = Counter()
        self.per_peer_received: Counter = Counter()
        #: directory control-plane service traffic (snapshot/delta records a
        #: shard worker received and applied).  Deliberately a separate
        #: counter family, NOT ``counters``: directory traffic is an
        #: artifact of the execution shape (it scales with K and vanishes at
        #: K=1), while :meth:`fingerprint` — and therefore every golden
        #: digest — pins workload observables that must be identical across
        #: kernel shapes.  Merged by :meth:`merge`, reported via
        #: :meth:`directory_summary`, never fingerprinted.
        self.directory: Counter = Counter()
        #: columnar shard-exchange accounting (SoA frames built, records
        #: carried, encoded bytes written to the shared-memory rings,
        #: payload-pickle and ring-capacity fallbacks).  Same contract as
        #: :attr:`directory`: an artifact of the execution shape (it scales
        #: with K and the executor and vanishes unsharded), so it is merged
        #: by :meth:`merge` and reported via :meth:`exchange_summary` but
        #: NEVER joins :meth:`fingerprint` — golden digests pin workload
        #: observables that must be identical across kernel shapes.
        self.exchange: Counter = Counter()
        #: fault-plane and recovery accounting (repro.sim.faults plus the
        #: tcp coordinator's supervision loop): worker deaths observed,
        #: slots respawned, WAL windows replayed into recovered workers,
        #: stale connections quarantined, heartbeats serviced, stalls
        #: survived.  Same contract as :attr:`directory`/:attr:`exchange`:
        #: injected faults and their recovery are execution-shape
        #: artifacts — the fault plane's whole proof obligation is that
        #: golden digests cannot move — so the family is merged by
        #: :meth:`merge`, reported via :meth:`faults_summary`, and never
        #: joins :meth:`fingerprint`.
        self.faults: Counter = Counter()
        self.log = ActivityLog()
        #: True once any recorded message's wire size diverged from its raw
        #: size (i.e. a non-identity codec touched this collector).  Gates
        #: the compressed columns in :meth:`fingerprint` and
        #: :meth:`traffic_table` so identity-codec runs stay byte-identical
        #: to the pre-codec stack.
        self._compressed = False

    # -- traffic -----------------------------------------------------------

    def record_message(self, message: Message) -> None:
        total = message.total_bytes()
        wire_total = message.total_wire_bytes()
        self.messages_by_type[message.msg_type] += 1
        self.bytes_by_type[message.msg_type] += total
        self.wire_bytes_by_type[message.msg_type] += wire_total
        self.hops_by_type[message.msg_type] += message.hops
        self.per_peer_bytes[message.src] += total
        self.per_peer_wire_bytes[message.src] += wire_total
        self.per_peer_received[message.dst] += message.size_bytes
        if wire_total != total:
            self._compressed = True

    def record_traffic(
        self,
        msg_type: str,
        size_bytes: int,
        hops: int = 1,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        wire_bytes: Optional[int] = None,
    ) -> None:
        """Account one message's traffic without a :class:`Message` object.

        Same arithmetic as :meth:`record_message` — used for modelled-only
        costs (maintenance probes) so they need no per-probe allocation.
        ``wire_bytes`` is the post-encoding size; omitted means identity
        (wire == raw), matching :class:`~repro.sim.messages.Message`.
        """
        if wire_bytes is None:
            wire_bytes = size_bytes
        total = size_bytes * max(1, hops)
        wire_total = wire_bytes * max(1, hops)
        self.messages_by_type[msg_type] += 1
        self.bytes_by_type[msg_type] += total
        self.wire_bytes_by_type[msg_type] += wire_total
        self.hops_by_type[msg_type] += hops
        if src is not None:
            self.per_peer_bytes[src] += total
            self.per_peer_wire_bytes[src] += wire_total
        if dst is not None:
            self.per_peer_received[dst] += size_bytes
        if wire_total != total:
            self._compressed = True

    def record_message_block(
        self,
        msg_type: str,
        size_bytes: int,
        src: int,
        dsts: Sequence[int],
        hops: int = 1,
        wire_bytes: Optional[int] = None,
    ) -> None:
        """Account a one-to-many block in bulk (vectorized broadcast path).

        Exactly equivalent to ``len(dsts)`` :meth:`record_traffic` calls with
        the same ``msg_type``/``size_bytes``/``src``/``hops``/``wire_bytes``
        — the per-type and per-src counters are bumped with one arithmetic
        operation each, and the per-destination received bytes in one
        ``Counter.update``.  ``dsts`` must be distinct addresses (broadcast
        recipient sets are).
        """
        count = len(dsts)
        if count == 0:
            return
        if wire_bytes is None:
            wire_bytes = size_bytes
        total = size_bytes * max(1, hops)
        wire_total = wire_bytes * max(1, hops)
        self.messages_by_type[msg_type] += count
        self.bytes_by_type[msg_type] += total * count
        self.wire_bytes_by_type[msg_type] += wire_total * count
        self.hops_by_type[msg_type] += hops * count
        self.per_peer_bytes[src] += total * count
        self.per_peer_wire_bytes[src] += wire_total * count
        self.per_peer_received.update(dict.fromkeys(dsts, size_bytes))
        if wire_total != total:
            self._compressed = True

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_type.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_type.values())

    @property
    def total_wire_bytes(self) -> int:
        """Post-encoding bytes: what actually crossed the modelled wire."""
        return sum(self.wire_bytes_by_type.values())

    @property
    def has_compressed_traffic(self) -> bool:
        """True once any wire size diverged from its raw size."""
        return self._compressed

    def bytes_for(self, *msg_types: str) -> int:
        return sum(self.bytes_by_type.get(t, 0) for t in msg_types)

    def wire_bytes_for(self, *msg_types: str) -> int:
        return sum(self.wire_bytes_by_type.get(t, 0) for t in msg_types)

    def messages_for(self, *msg_types: str) -> int:
        return sum(self.messages_by_type.get(t, 0) for t in msg_types)

    # -- directory control-plane accounting --------------------------------

    def record_directory(
        self, records: int, size_bytes: int, edits: int = 0
    ) -> None:
        """Account served control-plane traffic (outside the fingerprint)."""
        self.directory["control_records"] += records
        self.directory["control_bytes"] += size_bytes
        self.directory["control_edits"] += edits

    def directory_summary(self) -> Dict[str, int]:
        """The directory service counters (diagnostics; K-dependent)."""
        return dict(sorted(self.directory.items()))

    # -- shard-exchange accounting ------------------------------------------

    def record_exchange(
        self,
        frames: int = 0,
        records: int = 0,
        encoded_bytes: int = 0,
        pickled_records: int = 0,
        queue_fallbacks: int = 0,
    ) -> None:
        """Account columnar shard-exchange work (outside the fingerprint).

        ``frames``/``records`` count SoA window frames and the records they
        carry; ``encoded_bytes`` is the wire size of frames serialized for
        the mp rings (zero under the serial executor, which passes array
        frames in memory); ``pickled_records`` counts records whose payload
        genuinely needed the pickle sidecar; ``queue_fallbacks`` counts
        frames that outgrew the ring and fell back to the queue path.
        """
        self.exchange["frames"] += frames
        self.exchange["records"] += records
        self.exchange["encoded_bytes"] += encoded_bytes
        self.exchange["pickled_records"] += pickled_records
        self.exchange["queue_fallbacks"] += queue_fallbacks

    def exchange_summary(self) -> Dict[str, int]:
        """The shard-exchange counters (diagnostics; executor-dependent)."""
        return dict(sorted(self.exchange.items()))

    # -- fault-plane / recovery accounting -----------------------------------

    def record_fault(self, kind: str, count: int = 1) -> None:
        """Account one fault-plane or recovery event (outside the
        fingerprint): ``worker_deaths``, ``respawns``,
        ``replayed_windows``, ``quarantined_connections``,
        ``heartbeats``, ``stalls``."""
        self.faults[kind] += count

    def faults_summary(self) -> Dict[str, int]:
        """The fault/recovery counters (diagnostics; schedule-dependent)."""
        return dict(sorted(self.faults.items()))

    # -- counters & series -------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def observe(self, name: str, time: float, value: float) -> None:
        self.series[name].append((time, value))

    def series_values(self, name: str) -> List[float]:
        return [value for _, value in self.series.get(name, [])]

    # -- fingerprinting ----------------------------------------------------

    def fingerprint(self) -> Dict[str, Dict[str, int]]:
        """Canonical snapshot of every accounting observable.

        The determinism contract ("same seed → bit-identical stats") is
        checked against this structure: message/byte/hop counts by type,
        per-peer sent/received bytes, and named counters.  Time series and
        the activity log are excluded (they carry floats and free-form text,
        not accounting), and so are the :attr:`directory`,
        :attr:`exchange`, and :attr:`faults` counters — control-plane
        service traffic, shard-exchange framing, and fault/recovery
        events scale with the shard count, executor, and injected fault
        schedule, while the fingerprint pins observables that must be
        identical across every kernel shape.  Keys are stringified so
        the snapshot serializes to canonical JSON.

        The wire-byte counters appear only once compressed traffic exists:
        under the identity codec wire == raw everywhere, and the snapshot —
        hence every checked-in golden digest — is byte-identical to the
        pre-codec stack.  The moment a non-identity codec touches the run,
        both wire dimensions join the fingerprint and the determinism
        contract covers them too.
        """
        snapshot = {
            "messages_by_type": {k: v for k, v in sorted(self.messages_by_type.items())},
            "bytes_by_type": {k: v for k, v in sorted(self.bytes_by_type.items())},
            "hops_by_type": {k: v for k, v in sorted(self.hops_by_type.items())},
            "per_peer_bytes": {str(k): v for k, v in sorted(self.per_peer_bytes.items())},
            "per_peer_received": {str(k): v for k, v in sorted(self.per_peer_received.items())},
            "counters": {k: v for k, v in sorted(self.counters.items())},
        }
        if self._compressed:
            snapshot["wire_bytes_by_type"] = {
                k: v for k, v in sorted(self.wire_bytes_by_type.items())
            }
            snapshot["per_peer_wire_bytes"] = {
                str(k): v for k, v in sorted(self.per_peer_wire_bytes.items())
            }
        return snapshot

    def fingerprint_bytes(self) -> bytes:
        """The fingerprint as canonical JSON bytes (byte-identity checks)."""
        return json.dumps(
            self.fingerprint(), sort_keys=True, separators=(",", ":")
        ).encode("ascii")

    def digest(self) -> str:
        """SHA-256 hex digest of the canonical fingerprint (golden suite)."""
        return hashlib.sha256(self.fingerprint_bytes()).hexdigest()

    # -- reporting -------------------------------------------------------------

    def traffic_table(self) -> str:
        """Human-readable per-type traffic summary.

        Once compressed traffic exists the table grows ``wire`` and
        ``ratio`` columns (wire/raw per type); identity-only runs keep the
        original two-column layout.
        """
        compressed = self._compressed
        header = f"{'message type':<28}{'count':>10}{'bytes':>14}"
        if compressed:
            header += f"{'wire':>14}{'ratio':>8}"
        lines = [header]

        def render(label: str, count: int, raw: int, wire: int) -> str:
            line = f"{label:<28}{count:>10}{raw:>14}"
            if compressed:
                ratio = wire / raw if raw else 1.0
                line += f"{wire:>14}{ratio:>8.2f}"
            return line

        for msg_type in sorted(self.messages_by_type):
            lines.append(
                render(
                    msg_type,
                    self.messages_by_type[msg_type],
                    self.bytes_by_type[msg_type],
                    self.wire_bytes_by_type[msg_type],
                )
            )
        lines.append(
            render("TOTAL", self.total_messages, self.total_bytes,
                   self.total_wire_bytes)
        )
        return "\n".join(lines)

    def merge(self, other: "StatsCollector") -> None:
        """Fold another collector's numbers into this one."""
        self.messages_by_type.update(other.messages_by_type)
        self.bytes_by_type.update(other.bytes_by_type)
        self.wire_bytes_by_type.update(other.wire_bytes_by_type)
        self.hops_by_type.update(other.hops_by_type)
        self.counters.update(other.counters)
        self.directory.update(other.directory)
        self.exchange.update(other.exchange)
        self.faults.update(other.faults)
        self.per_peer_bytes.update(other.per_peer_bytes)
        self.per_peer_wire_bytes.update(other.per_peer_wire_bytes)
        self.per_peer_received.update(other.per_peer_received)
        self._compressed = self._compressed or other._compressed
        for name, points in other.series.items():
            self.series[name].extend(points)

    # -- window deltas (simulation WAL) ------------------------------------

    #: the counter families :meth:`fingerprint` is built from — exactly the
    #: state the WAL must log per window for prefix replay to reproduce the
    #: final digest.  ``series``/``log`` (not fingerprinted, unbounded) and
    #: ``directory``/``exchange``/``faults`` (execution-shape artifacts,
    #: see above) are deliberately excluded.
    _DELTA_FAMILIES = (
        "messages_by_type", "bytes_by_type", "wire_bytes_by_type",
        "hops_by_type", "counters", "per_peer_bytes",
        "per_peer_wire_bytes", "per_peer_received",
    )

    def delta_snapshot(self) -> Dict[str, dict]:
        """Cheap copy of the fingerprinted families, for :meth:`delta_since`."""
        snapshot: Dict[str, dict] = {
            name: dict(getattr(self, name)) for name in self._DELTA_FAMILIES
        }
        snapshot["compressed"] = self._compressed
        return snapshot

    def delta_since(self, snapshot: Dict[str, dict]) -> Dict[str, dict]:
        """Changed-key increments since ``snapshot``.

        Counters only ever grow, so the delta is ``{key: new - old}`` over
        keys whose value moved; empty families are omitted.  Deltas compose:
        applying every window's delta (any order — the algebra is
        commutative, like :meth:`merge`) to a fresh collector reproduces the
        source collector's :meth:`fingerprint` exactly.
        """
        delta: Dict[str, dict] = {}
        for name in self._DELTA_FAMILIES:
            base = snapshot[name]
            changed = {
                key: value - base.get(key, 0)
                for key, value in getattr(self, name).items()
                if value != base.get(key, 0)
            }
            if changed:
                delta[name] = changed
        if self._compressed and not snapshot["compressed"]:
            delta["compressed"] = True
        return delta

    def apply_delta(self, delta: Dict[str, dict]) -> None:
        """Fold a :meth:`delta_since` increment into this collector."""
        for name in self._DELTA_FAMILIES:
            changed = delta.get(name)
            if changed:
                getattr(self, name).update(changed)
        if delta.get("compressed"):
            self._compressed = True
