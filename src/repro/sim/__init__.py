"""P2PDMT — the P2P data-mining simulation toolkit (paper Fig. 2).

The original system extends OverSim; this package is a self-contained
discrete-event replacement providing the same observables:

- a deterministic event kernel with a virtual clock (:mod:`repro.sim.engine`),
- a physical-network model with latency, bandwidth and loss
  (:mod:`repro.sim.network`),
- churn processes driving joins and failures (:mod:`repro.sim.churn`),
- size-accounted messages (:mod:`repro.sim.messages`),
- wire-format codec size models (:mod:`repro.sim.codec`),
- activity logging and statistics (:mod:`repro.sim.stats`),
- training-data distribution across peers (:mod:`repro.sim.distribution`),
- scenario configuration and running (:mod:`repro.sim.scenario`),
- the sharded event kernel with conservative virtual-time windows
  (:mod:`repro.sim.shard`),
- the columnar cross-shard exchange frames and rings
  (:mod:`repro.sim.exchange`),
- the per-window write-ahead log and prefix replay
  (:mod:`repro.sim.wal`),
- the socket executor placing shard workers across machines
  (:mod:`repro.sim.tcpexec`), and
- network visualization helpers (:mod:`repro.sim.visualize`).
"""

from repro.sim.engine import Simulator, Event
from repro.sim.messages import Message, payload_size
from repro.sim.network import (
    PhysicalNetwork,
    LatencyModel,
    PeerStreams,
    pair_mix64,
    pair_seed,
    stream_seed,
)
from repro.sim.transport import Transport, Outcome, BroadcastOutcome
from repro.sim.codec import (
    Codec,
    CodecTable,
    codec_names,
    make_codec_table,
    register_traffic_class,
)
from repro.sim.churn import (
    ChurnModel,
    NoChurn,
    ExponentialChurn,
    WeibullChurn,
    ParetoChurn,
    ChurnDriver,
)
from repro.sim.node import SimNode
from repro.sim.stats import StatsCollector, ActivityLog
from repro.sim.trace import MessageTrace, TraceRecord
from repro.sim.workload import QueryWorkload, WorkloadConfig, QueryEvent
from repro.sim.distribution import DataDistributor, ShardSpec
from repro.sim.scenario import ScenarioConfig, Scenario
from repro.sim.shard import (
    ShardedRun,
    ShardedScenario,
    compute_lookahead,
    run_sharded,
    scenario_digest,
    shard_of,
)

__all__ = [
    "Simulator",
    "Event",
    "Message",
    "payload_size",
    "PhysicalNetwork",
    "LatencyModel",
    "pair_mix64",
    "pair_seed",
    "Transport",
    "Outcome",
    "BroadcastOutcome",
    "Codec",
    "CodecTable",
    "codec_names",
    "make_codec_table",
    "register_traffic_class",
    "ChurnModel",
    "NoChurn",
    "ExponentialChurn",
    "WeibullChurn",
    "ParetoChurn",
    "ChurnDriver",
    "SimNode",
    "StatsCollector",
    "ActivityLog",
    "MessageTrace",
    "TraceRecord",
    "QueryWorkload",
    "WorkloadConfig",
    "QueryEvent",
    "DataDistributor",
    "ShardSpec",
    "ScenarioConfig",
    "Scenario",
    "PeerStreams",
    "stream_seed",
    "ShardedRun",
    "ShardedScenario",
    "compute_lookahead",
    "run_sharded",
    "scenario_digest",
    "shard_of",
]
