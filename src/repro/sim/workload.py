"""Query workload generation (P2PDMT "frequency and timings of evaluations").

The demo configures "testing data, frequency and timings of evaluations";
this module generates realistic *tagging request* workloads: each peer
issues AutoTag/Suggest queries as a Poisson process, optionally with diurnal
modulation, producing a deterministic time-ordered request schedule that
experiments can replay against a trained classifier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QueryEvent:
    """One scheduled tagging request."""

    time: float
    peer: int
    doc_index: int  # index into the peer's (or global) untagged pool


@dataclass
class WorkloadConfig:
    """Parameters of the request process."""

    peers: Sequence[int]
    rate_per_peer: float = 0.05  # requests / second / peer
    duration: float = 600.0
    diurnal: bool = False  # sinusoidal day/night modulation
    diurnal_period: float = 86_400.0
    seed: int = 0

    def validate(self) -> None:
        if not self.peers:
            raise ConfigurationError("workload needs at least one peer")
        if self.rate_per_peer <= 0:
            raise ConfigurationError("rate_per_peer must be positive")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.diurnal_period <= 0:
            raise ConfigurationError("diurnal_period must be positive")


class QueryWorkload:
    """Generates a deterministic, time-ordered request schedule."""

    def __init__(self, config: WorkloadConfig) -> None:
        config.validate()
        self.config = config

    def _intensity(self, time: float) -> float:
        """Instantaneous rate multiplier in (0, 1]."""
        if not self.config.diurnal:
            return 1.0
        phase = 2.0 * math.pi * time / self.config.diurnal_period
        return 0.55 + 0.45 * math.sin(phase)  # never fully silent

    def generate(self) -> List[QueryEvent]:
        """All events over ``duration``, sorted by time.

        Uses thinning for the diurnal case so the schedule stays an exact
        (inhomogeneous) Poisson process.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        events: List[QueryEvent] = []
        doc_counters = {peer: 0 for peer in cfg.peers}
        for peer in cfg.peers:
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / cfg.rate_per_peer))
                if t >= cfg.duration:
                    break
                if cfg.diurnal and rng.random() > self._intensity(t):
                    continue  # thinned out
                events.append(
                    QueryEvent(time=t, peer=peer, doc_index=doc_counters[peer])
                )
                doc_counters[peer] += 1
        events.sort(key=lambda e: (e.time, e.peer))
        return events

    def replay(
        self,
        events: Sequence[QueryEvent],
        handler: Callable[[QueryEvent], None],
        simulator=None,
    ) -> int:
        """Run ``handler`` for each event (via the simulator clock if given).

        Returns the number of events replayed.
        """
        if simulator is None:
            for event in events:
                handler(event)
            return len(events)
        for event in events:
            simulator.schedule_at(
                max(simulator.now, event.time),
                lambda e=event: handler(e),
                label="workload-query",
            )
        simulator.run()
        return len(events)

    def expected_total(self) -> float:
        """Mean number of events the process produces."""
        base = len(self.config.peers) * self.config.rate_per_peer
        if not self.config.diurnal:
            return base * self.config.duration
        # Average intensity of 0.55 + 0.45 sin over whole periods ~ 0.55.
        return base * self.config.duration * 0.55
