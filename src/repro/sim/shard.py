"""Sharded event kernel: peers partitioned across K simulator heaps,
advanced in conservative virtual-time windows.

This is the parallel-discrete-event layer of the stack.  A
:class:`ShardedScenario` splits the peer population across ``K`` shards
(round-robin, :func:`shard_of`); each shard owns a full
:class:`~repro.sim.engine.Simulator` heap and a replica of the scenario
(overlay, liveness, churn timelines).  Shards advance in lockstep windows of
length *lookahead* — the guaranteed minimum cross-shard delivery delay
(:func:`compute_lookahead`) — so an event executed inside a window can never
be affected by a message sent in the same window by another shard.

**The cut point is the transport stack's network layer**
(:class:`ShardNetwork`): a send whose destination lives on another shard is
not scheduled locally — its full delivery (time, payload, sizes) is computed
at send time from the source peer's own random streams, accumulated in a
per-window exchange outbox, columnarized into a struct-of-arrays
:class:`~repro.sim.exchange.ExchangeFrame` at the barrier, and injected into
the destination shard's heap ordered by ``(deliver_time, src_shard, seq)``
(one ``numpy.lexsort`` + one :meth:`Simulator.schedule_block`).
Intra-shard traffic never leaves its heap.

**Why this reproduces the single-heap kernel bit-for-bit.**  Three design
rules make every observable identical to the unsharded kernel running the
same scenario:

1. *Per-peer randomness* (``rng_mode="perpeer"``): jitter, loss and churn
   draws come from per-peer streams (:class:`~repro.sim.network.PeerStreams`)
   consumed only in their owner's causal order — which conservative windows
   preserve — so no draw's value depends on cross-peer interleaving.
2. *Replicated control plane*: churn timelines and overlay maintenance are
   autonomous deterministic processes (they draw only from per-peer streams
   and overlay state), so every shard replays them in full, keeping its
   overlay/liveness replicas in sync without any cross-shard traffic.
   Ownership hooks (:meth:`~repro.sim.scenario.Scenario.owns`) gate each
   replicated observable to exactly one shard's
   :class:`~repro.sim.stats.StatsCollector`.
3. *Commutative accounting*: stats are counters; the merge of the per-shard
   collectors (:meth:`StatsCollector.merge`) equals the single collector of
   the unsharded run regardless of execution order.

Two executors run the same shard-worker code:

- ``serial`` — the deterministic reference: worker replicas run as lockstep
  threads in one process, the coordinator routes exchange frames in memory.
- ``mp`` — one forked worker process per shard; control messages flow over
  pipes, encoded exchange frames over shared-memory rings
  (:class:`~repro.sim.exchange.RingExchange` — zero per-record pickling;
  oversized frames fall back to per-shard queues), and the per-worker stats
  are merged in the parent via :meth:`StatsCollector.merge`.  Set
  ``REPRO_SCALAR_EXCHANGE=1`` to pin the legacy per-record tuple/pickle
  queue path (the reference the equivalence fuzz compares against).

Both produce byte-identical fingerprints to each other and to the unsharded
kernel; ``tests/test_shard_equivalence.py`` fuzzes that claim across
overlay × protocol × churn × loss × codec × shard-count.

SPMD contract for workloads: the workload callable runs *identically* in
every worker (same seeds, same orchestration); per-peer work is either
event-driven (scheduled only on the owning shard — see
``P2PTagClassifier._run_staggered_round``) or orchestrator-driven
(replicated calls whose network effects the :class:`ShardNetwork` gates by
source ownership).  A single peer must not mix both styles within one
training phase, or its loss stream would desynchronize across replicas.

**The directory control plane** (``control_plane="directory"``) sheds rule
2's per-worker O(N) price: instead of every shard replaying churn timelines
and overlay maintenance for all N peers, one authoritative
:class:`DirectoryControlPlane` (owned by the window coordinator) runs them
once, publishes a deterministic overlay snapshot at startup plus per-window
:data:`ControlRecord` deltas — join/leave membership ops and served
route-table edits, serialized and ordered like exchange records — and
workers apply the deltas at barriers, scheduled at their exact virtual
times.  Worker overlays become *views*: same class, same route algorithms,
state restored rather than computed; per-peer workload state materializes
only for owned peers (:meth:`Scenario.materialize_peer`).  The equivalence
argument changes from "every shard computes everything identically" to "one
writer, K readers, provably the same observable stream" — enforced by the
same differential fuzz and golden suites, byte for byte, plus the
directory-specific tiers in ``tests/test_directory_plane.py``.

Not to be confused with :class:`repro.sim.distribution.ShardSpec`, which
describes how *data* is distributed across peers; this module shards the
*event kernel* across workers.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
import os
import queue
import threading
import traceback
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.sim.churn import DirectoryChurnClient
from repro.sim.engine import Simulator
from repro.sim.faults import FaultPlan
from repro.sim.exchange import (
    ExchangeFrame,
    RingExchange,
    exchange_timeout_seconds,
    merge_frames,
    scalar_exchange_enabled,
)
from repro.sim.messages import Message, payload_size
from repro.sim.network import LatencyModel, PeerStreams, PhysicalNetwork
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.sim.stats import StatsCollector
from repro.sim.wal import WalProbe, WalSession

_INF = float("inf")

#: exchange record layout — a cross-shard delivery computed at send time:
#: (deliver_at, src_shard, seq, src, dst, msg_type, payload, size_bytes,
#:  wire_bytes, hops).  This tuple shape is the *outbox accumulator and
#: reference wire format*, not the hot path: at each window barrier the
#: per-destination outbox is columnarized into a struct-of-arrays
#: :class:`~repro.sim.exchange.ExchangeFrame` (numeric numpy columns, an
#: interned msg_type id table, and a pickle sidecar only for records whose
#: payload is a real object) that serial executors pass through memory and
#: the mp executor ships as one encoded blob through shared-memory rings —
#: zero per-record pickling.  Tuples still travel whole-window over the mp
#: queues in exactly two cases: ``REPRO_SCALAR_EXCHANGE=1`` pins this
#: legacy path as the differential-fuzz reference, and a frame too large
#: for its ring falls back to a single queue put of the encoded blob
#: (counted in ``StatsCollector.exchange["queue_fallbacks"]``).
ExchangeRecord = Tuple[float, int, int, int, int, str, Any, int, int, int]

#: directory delta record layout — one control-plane observable, serialized
#: and ordered like exchange records: (virtual time, kind, payload) with
#: kind ∈ {"leave", "join", "maintenance"}.  Leave/join carry the peer
#: address (replicated cheap ops: the view updates membership itself);
#: maintenance carries the served route-table edits
#: (:data:`repro.overlay.base.StateEdit` tuples) the authority computed.
ControlRecord = Tuple[float, str, Any]

Workload = Callable[[Scenario], Any]


def shard_of(address: int, num_shards: int) -> int:
    """Owning shard of a peer address (round-robin partition)."""
    return address % num_shards


def compute_lookahead(latency: LatencyModel) -> float:
    """Conservative window length from the latency model's delay bounds.

    Any delivery's delay is at least ``pair_factor_min (0.5) × base_latency
    × jitter_min`` (plus a non-negative transmission term), where
    ``jitter_min`` is the model's :attr:`~LatencyModel.jitter_floor` when
    jitter is drawn and exactly 1 otherwise.  A message sent inside window
    ``[W, W + lookahead)`` therefore delivers at or after the window end —
    the conservative synchronization invariant.
    """
    lookahead = latency.min_propagation()
    if lookahead <= 0:
        raise ConfigurationError(
            "latency model admits zero-delay deliveries (set jitter_floor "
            "> 0 and base_latency > 0); conservative windows need a "
            "positive lookahead"
        )
    return lookahead


def scenario_digest(stats: StatsCollector, now: float) -> str:
    """SHA-256 digest of a run's stats fingerprint + final virtual clock.

    Exactly the recipe of the golden determinism suite, so sharded and
    unsharded runs are comparable byte-for-byte.
    """
    payload = stats.fingerprint_bytes() + json.dumps({"now": now}).encode(
        "ascii"
    )
    return hashlib.sha256(payload).hexdigest()


# ---------------------------------------------------------------------------
# The directory control plane (control_plane="directory").
# ---------------------------------------------------------------------------


class DirectoryControlPlane:
    """The single authoritative control plane of a directory-mode run.

    Owned by the window coordinator (the parent process under the mp
    executor, the coordinator loop under serial).  It constructs the one
    authoritative overlay — N joins plus table finalization, paid exactly
    once per run instead of once per shard — publishes its
    :attr:`snapshot` for workers to restore at startup, and generates the
    churn/maintenance timeline as :data:`ControlRecord` deltas, one window
    *ahead* of execution.

    Why one window ahead works: churn timelines are autonomous deterministic
    processes — session/downtime draws come from per-peer churn streams
    (:class:`~repro.sim.network.PeerStreams`) and never depend on message
    flow — and maintenance is periodic.  So when the coordinator has decided
    the next window ``[W, W + lookahead)``, every control event inside it is
    already computable: :meth:`advance` pops the event heap up to the window
    end, executes each event against the authoritative overlay, and emits
    the resulting record (leave/join as replicated membership ops,
    maintenance as served route-table edits via
    :meth:`~repro.overlay.base.Overlay.diff_state`).  Workers receive the
    records with the window decision and schedule their application at the
    exact virtual times, so mid-window route resolutions observe state
    byte-identical to the replicated (and unsharded) kernels.

    Tie ordering is the heap's ``(time, seq)``: seq is allocated in schedule
    order — initial leaves in peer-address order, then stabilize, then
    rescheduled events in execution order — exactly the order the unsharded
    :class:`~repro.sim.churn.ChurnDriver` + stabilize chain would pop them.

    ``stop_churn`` arrives at the barrier *after* the window in which the
    workload called it; records already published past the stop time are
    suppressed worker-side (:meth:`DirectoryChurnClient.suppresses`), which
    reproduces the driver's "queued events fire inactive" semantics.  The
    authoritative overlay, however, has already executed such records, so a
    stop that lands mid-window with published churn behind it raises loudly
    instead of letting later maintenance diffs serve diverged state (see
    :meth:`_stop`).
    """

    def __init__(self, config: ScenarioConfig) -> None:
        if config.control_plane != "directory":
            raise ConfigurationError(
                "DirectoryControlPlane requires control_plane='directory'"
            )
        self.config = config
        self.peer_addresses = list(range(config.num_peers))
        self.overlay = config.build_overlay()
        for address in self.peer_addresses:
            self.overlay.join(address)
        stabilize = getattr(self.overlay, "stabilize", None)
        if callable(stabilize):
            stabilize()
        #: the startup snapshot workers restore their overlay views from
        self.snapshot = self.overlay.export_state()
        self.snapshot_bytes = payload_size(self.snapshot)
        self.model = config.build_churn_model()
        self.streams = PeerStreams(config.seed)
        self._heap: List[Tuple[float, int, str, Optional[int]]] = []
        self._seq = itertools.count()
        self._active: Dict[int, bool] = {}
        self._down: set = set()
        self._stabilize_scheduled = False
        #: virtual times of every published churn record — consulted by
        #: _stop to detect the unsupported mid-window stop (see below)
        self._published_churn_times: List[float] = []
        self.records_emitted = 0
        self.edits_emitted = 0
        self.record_bytes = 0

    # -- barrier protocol ---------------------------------------------------

    def handle_requests(
        self, requests: Sequence[Tuple[str, float]]
    ) -> None:
        """Process the shards' (SPMD-identical) control requests."""
        for kind, time in requests:
            if kind == "start_churn":
                self._start(time)
            elif kind == "stop_churn":
                self._stop(time)
            else:  # pragma: no cover - wire-format drift guard
                raise SimulationError(f"unknown control request {kind!r}")

    def next_time(self) -> float:
        """Earliest unpublished control event (``inf`` when idle)."""
        return self._heap[0][0] if self._heap else _INF

    def advance(self, until: float) -> List[ControlRecord]:
        """Execute control events through ``until``; emit their records.

        Called once per window barrier with the agreed window end; events
        pop in ``(time, seq)`` order and each window's records extend the
        previously published horizon exactly once (the heap is the cursor).
        """
        records: List[ControlRecord] = []
        while self._heap and self._heap[0][0] <= until:
            time, _, kind, peer = heapq.heappop(self._heap)
            if kind == "leave":
                self._exec_leave(time, peer, records)
            elif kind == "rejoin":
                self._exec_rejoin(time, peer, records)
            else:
                self._exec_stabilize(time, records)
        if records:
            self.records_emitted += len(records)
            self.record_bytes += payload_size(records)
        return records

    # -- the churn / maintenance timeline ----------------------------------

    def _schedule(self, time: float, kind: str, peer: Optional[int]) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), kind, peer))

    def _start(self, t0: float) -> None:
        """Mirror Scenario.start_churn: per-peer leave cycles, then the
        periodic stabilize chain."""
        if self.model.churns:
            for peer in self.peer_addresses:
                self._active[peer] = True
                self._schedule_leave(t0, peer)
        if self.model.churns and not self._stabilize_scheduled:
            self._stabilize_scheduled = True
            self._schedule(
                t0 + self.config.stabilize_interval, "stabilize", None
            )

    def _stop(self, time: float) -> None:
        # A stop request reaches the plane one barrier after the workload
        # called it, but records for that window were published — and
        # executed against the authoritative overlay — at the window's
        # opening barrier.  Workers correctly suppress published churn
        # records past the stop instant (DirectoryChurnClient.suppresses),
        # so a churn record in (stop, window_end] means the authority has
        # applied a membership change the fleet skipped: every later
        # maintenance diff would serve state the replicated kernel never
        # reaches.  Rather than silently diverge, fail loudly — directory
        # mode supports stop() whenever no churn record past the stop
        # instant was already published (in particular any stop between
        # run() calls or in churn-quiet stretches).
        suppressed = [t for t in self._published_churn_times if t > time]
        if suppressed:
            raise SimulationError(
                f"directory control plane: stop_churn at t={time} arrived "
                f"after churn records at {sorted(suppressed)} were already "
                "published and applied to the authoritative overlay; the "
                "served state would diverge from the replicated kernel. "
                "Stop churn at a churn-quiet point, or use "
                "control_plane='replicated' for mid-window stops."
            )
        for peer in self._active:
            self._active[peer] = False

    def _schedule_leave(self, now: float, peer: int) -> None:
        session = self.model.session_time(self.streams.churn_rng(peer))
        if session == _INF:
            return
        self._schedule(now + session, "leave", peer)

    def _exec_leave(
        self, time: float, peer: int, records: List[ControlRecord]
    ) -> None:
        if not self._active.get(peer):
            return
        if peer in self._down:
            return
        self._down.add(peer)
        self.overlay.leave(peer)
        records.append((time, "leave", peer))
        self._published_churn_times.append(time)
        downtime = self.model.downtime(self.streams.churn_rng(peer))
        self._schedule(time + downtime, "rejoin", peer)

    def _exec_rejoin(
        self, time: float, peer: int, records: List[ControlRecord]
    ) -> None:
        if not self._active.get(peer):
            return
        self._down.discard(peer)
        self.overlay.join(peer)
        records.append((time, "join", peer))
        self._published_churn_times.append(time)
        self._schedule_leave(time, peer)

    def _exec_stabilize(
        self, time: float, records: List[ControlRecord]
    ) -> None:
        """One maintenance round, served: recompute on the authority, diff,
        emit only the changed route-table entries."""
        before = self.overlay.export_state()
        stabilize = getattr(self.overlay, "stabilize", None)
        if callable(stabilize):
            stabilize()
        repair = getattr(self.overlay, "repair", None)
        if callable(repair):
            repair()
        edits = self.overlay.diff_state(before)
        self.edits_emitted += len(edits)
        records.append((time, "maintenance", edits))
        self._schedule(
            time + self.config.stabilize_interval, "stabilize", None
        )


# ---------------------------------------------------------------------------
# Shard runtime: per-worker state shared by the worker's kernel and network.
# ---------------------------------------------------------------------------


class _ShardRuntime:
    """One worker's shard identity, exchange outbox, and channel."""

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        channel: "_Channel",
        lookahead: float,
        snapshot: Optional[dict] = None,
    ) -> None:
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.channel = channel
        self.lookahead = lookahead
        #: per-destination-shard exchange queues for the current window
        self.outbound: List[List[ExchangeRecord]] = [
            [] for _ in range(num_shards)
        ]
        self.outbound_count = 0
        self._seq = 0
        #: back-reference for injecting received records (set by the
        #: worker scenario once its network exists)
        self.network: Optional[PhysicalNetwork] = None
        self.windows = 0
        #: directory mode: the control plane's startup overlay snapshot
        #: (shared read-only; views restore by deep copy)
        self.snapshot = snapshot
        #: directory mode: control requests pending for the next barrier
        self.control_requests: List[Tuple[str, float]] = []
        #: directory mode: installed by the worker scenario — schedules the
        #: barrier's served delta records at their exact virtual times
        self.control_sink: Optional[Callable[[List[ControlRecord]], None]] = (
            None
        )
        #: WAL runs: installed by :func:`_worker_body` — exports the
        #: worker's stats delta + kernel/RNG cursors at each barrier
        self.wal_probe: Optional[Callable[[], bytes]] = None
        #: accounting-only observers called with the window index at each
        #: barrier (trace-store flush / per-window stats deltas); hooks run
        #: outside the event stream and must not schedule events or draw
        #: from simulation RNGs
        self.barrier_hooks: List[Callable[[int], None]] = []
        #: fault plane (repro.sim.faults): installed by the tcp worker to
        #: fire this shard's injected process faults (crash/stall/half-
        #: open) with the window index at each barrier, after the
        #: accounting hooks and before the sync
        self.fault_hook: Optional[Callable[[int], None]] = None

    def request_control(self, kind: str, time: float) -> None:
        """Queue a control request for the next window barrier."""
        self.control_requests.append((kind, time))

    def take_requests(self) -> List[Tuple[str, float]]:
        out = self.control_requests
        self.control_requests = []
        return out

    def owns(self, address: int) -> bool:
        return address % self.num_shards == self.shard_id

    def append_record(
        self,
        deliver_at: float,
        src: int,
        dst: int,
        msg_type: str,
        payload: Any,
        size_bytes: int,
        wire_bytes: int,
        hops: int,
    ) -> None:
        self._seq += 1
        self.outbound[dst % self.num_shards].append(
            (deliver_at, self.shard_id, self._seq, src, dst, msg_type,
             payload, size_bytes, wire_bytes, hops)
        )
        self.outbound_count += 1

    def take_outbound(self) -> List[List[ExchangeRecord]]:
        out = self.outbound
        self.outbound = [[] for _ in range(self.num_shards)]
        self.outbound_count = 0
        return out


# ---------------------------------------------------------------------------
# The windowed shard kernel.
# ---------------------------------------------------------------------------


class ShardSimulator(Simulator):
    """A shard's event heap, advanced in coordinator-agreed windows.

    ``run()`` loops window barriers: flush the exchange outbox, receive the
    coordinator's decision (next window start = the global minimum next
    event time, so empty stretches are skipped in one hop) plus the sorted
    inbound records, inject them, and run the plain kernel to the window
    end.  The loop exits in lockstep — every worker sees the same decision
    stream, so all workers perform the same number of barriers per ``run``
    call, which is what keeps SPMD workloads aligned.
    """

    def __init__(self, seed: int, runtime: _ShardRuntime) -> None:
        super().__init__(seed)
        self._runtime = runtime
        self._exhausted = False

    @property
    def pending_events(self) -> int:
        """Live local events plus not-yet-exchanged cross-shard records."""
        return self._pending + self._runtime.outbound_count

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        runtime = self._runtime
        executed = 0
        entry_now = self._now
        last_this_run = -_INF
        self._exhausted = False
        probe = runtime.wal_probe
        while True:
            for hook in runtime.barrier_hooks:
                hook(runtime.windows)
            if runtime.fault_hook is not None:
                runtime.fault_hook(runtime.windows)
            decision = runtime.channel.sync(
                runtime.take_outbound(),
                self.next_event_time(),
                last_this_run,
                executed,
                runtime.take_requests(),
                probe() if probe is not None else None,
            )
            runtime.windows += 1
            if decision.error is not None:
                raise SimulationError(
                    f"shard {runtime.shard_id}: aborted at window barrier: "
                    f"{decision.error}"
                )
            self._inject(decision.inbox)
            if decision.control:
                # Directory mode: schedule the window's served control-plane
                # deltas at their exact virtual times (before any break —
                # records may reach past this run's `until`, exactly like
                # the replicated kernels' still-queued churn events).
                runtime.control_sink(decision.control)
            window_start = decision.window_start
            if (
                max_events is not None
                and decision.total_executed >= max_events
            ):
                self._exhausted = True
                break
            if window_start == _INF:
                # Global quiescence: every heap empty, nothing in flight.
                if until is not None:
                    if until > self._now:
                        self._now = until
                else:
                    # Agree on the unsharded clock: the time of the last
                    # event executed anywhere this run (window ends are
                    # transient clamps and must not leak into `now`).
                    self._now = max(entry_now, decision.global_last)
                break
            if until is not None and window_start > until:
                if until > self._now:
                    self._now = until
                break
            window_end = window_start + runtime.lookahead
            if until is not None and window_end > until:
                window_end = until
            # Bound the window by the remaining event budget so a runaway
            # schedule loop inside one window returns to the barrier (where
            # the global exhaustion check raises) instead of hanging every
            # other shard at its sync point forever.
            inner_budget = (
                None if max_events is None else max(0, max_events - executed)
            )
            ran = Simulator.run(
                self, until=window_end, max_events=inner_budget
            )
            executed += ran
            if ran:
                last_this_run = self._last_event_time
        return executed

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        executed = self.run(max_events=max_events)
        if self._exhausted:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events "
                "(summed across shards)"
            )
        return executed

    def _inject(self, records: Sequence[Any]) -> None:
        """Schedule received cross-shard deliveries at their exact times.

        The inbox is either a list of :class:`ExchangeFrame` (the default
        SoA path: one frame per sender shard, merged and ordered by
        ``(deliver_time, src_shard, seq)`` with one ``np.lexsort`` and
        bulk-scheduled through the array-native
        :meth:`Simulator.schedule_block` — no per-event tuple/handle
        allocation) or a pre-sorted list of :data:`ExchangeRecord` tuples
        (the ``REPRO_SCALAR_EXCHANGE=1`` reference path).  Either way the
        kernel's own past-time validation doubles as the conservative-
        window guard (a record behind the local clock means the lookahead
        contract was violated and raises loudly).
        """
        if not records:
            return
        network = self._runtime.network
        if isinstance(records[0], ExchangeFrame):
            times, columns = merge_frames(records)
            self.schedule_block(times, network._deliver_lazy, columns)
            return
        self.schedule_batch_at(
            [record[0] for record in records],
            network._deliver_lazy,
            (record[3:10] for record in records),
        )


class ShardNetwork(PhysicalNetwork):
    """Shard-aware physical network: the cross-shard cut point.

    Replicates the base send semantics with two twists:

    - *Ownership gating*: only the source peer's owning shard records
      traffic, draws jitter, and schedules delivery.  Replicated
      orchestrator-level sends on other shards still compute the same
      :class:`~repro.sim.transport.Outcome`-visible results (liveness from
      the synced replica, drops from the shared per-peer loss stream) so
      SPMD workload code observes identical outcomes everywhere while every
      byte is accounted exactly once.
    - *Exchange interception*: a delivery owed to a peer on another shard
      becomes an :data:`ExchangeRecord` (full delivery time computed at
      send time from the source's streams) instead of a local heap entry.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: LatencyModel,
        stats: StatsCollector,
        rng_for_src: Callable[[int], np.random.Generator],
        loss_rng_for_src: Callable[[int], np.random.Generator],
        runtime: _ShardRuntime,
    ) -> None:
        super().__init__(
            simulator,
            latency=latency,
            stats=stats,
            rng_for_src=rng_for_src,
            loss_rng_for_src=loss_rng_for_src,
        )
        self._runtime = runtime

    def _owns(self, address: int) -> bool:
        return self._runtime.owns(address)

    # -- sending -----------------------------------------------------------
    #
    # send/send_batch mirror PhysicalNetwork.send/send_batch line for line,
    # with ownership gates interleaved at the three accounting points
    # (record, drop counter, schedule/export).  The copy is deliberate: the
    # base methods are the million-message hot path and must stay free of
    # per-message hook calls.  ANY semantic edit to the base methods must be
    # mirrored here — the golden + fuzz equivalence suites fail loudly on a
    # missed mirror, but fix the copy, don't silence the suite.

    def send(self, message: Message) -> bool:
        if message.src == message.dst:
            raise SimulationError("loopback messages need no network")
        for listener in self._send_listeners:
            listener(message)
        if self._block_listeners and self._owns(message.src):
            # Block observation is ownership-gated so K per-shard stores
            # merge to exactly the unsharded store's row set (each attempt
            # observed once, on its source's owner).
            self._notify_message_block((message,))
        if not self.is_up(message.src):
            return False
        owned = self._owns(message.src)
        if owned:
            self.stats.record_message(message)
        if (
            self.latency.drop_probability > 0
            and self._loss_rng(message.src).random()
            < self.latency.drop_probability
        ):
            if owned:
                self.stats.increment("messages_dropped")
            return False
        if not owned:
            # The owning shard performs the charge, jitter draw, and
            # scheduling; this replica only reports the (identical) outcome.
            return True
        pair_factor = self._pair_base_latency(message.src, message.dst)
        delay = pair_factor * self.latency.delay_for(
            message, self._jitter_rng(message.src)
        )
        if self._owns(message.dst):
            self.simulator.schedule(
                delay, self._deliver, label="deliver", args=(message,)
            )
        else:
            self._runtime.append_record(
                self.simulator.now + delay,
                message.src,
                message.dst,
                message.msg_type,
                message.payload,
                message.size_bytes,
                message.wire_bytes,
                message.hops,
            )
        return True

    def send_batch(self, messages: Sequence[Message]) -> List[bool]:
        for message in messages:
            if message.src == message.dst:
                raise SimulationError("loopback messages need no network")
        if self.latency.drop_probability > 0 or len(messages) < 2:
            return [self.send(message) for message in messages]
        if self._block_listeners:
            owned_attempts = [m for m in messages if self._owns(m.src)]
            if owned_attempts:
                self._notify_message_block(owned_attempts)
        results: List[bool] = []
        live: List[Message] = []
        record = self.stats.record_message
        listeners = self._send_listeners
        for message in messages:
            if listeners:
                for listener in listeners:
                    listener(message)
            if not self.is_up(message.src):
                results.append(False)
                continue
            results.append(True)
            if not self._owns(message.src):
                continue
            record(message)
            live.append(message)
        if live:
            self._schedule_block(live)
        return results

    def _schedule_block(self, live: List[Message]) -> None:
        delays = self._block_delays(live)
        runtime = self._runtime
        now = self.simulator.now
        local: List[Message] = []
        local_delays: List[float] = []
        for message, delay in zip(live, delays.tolist()):
            if self._owns(message.dst):
                local.append(message)
                local_delays.append(delay)
            else:
                runtime.append_record(
                    now + delay,
                    message.src,
                    message.dst,
                    message.msg_type,
                    message.payload,
                    message.size_bytes,
                    message.wire_bytes,
                    message.hops,
                )
        if local:
            self.simulator.schedule_batch(
                local_delays, self._deliver, ((m,) for m in local)
            )

    def broadcast_block(
        self,
        src: int,
        dsts: Sequence[int],
        msg_type: str,
        payload: Any,
        size_bytes: int,
        wire_bytes: Optional[int] = None,
    ) -> np.ndarray:
        count = len(dsts)
        if not self._owns(src):
            return np.ones(count, dtype=bool)
        if wire_bytes is None:
            wire_bytes = size_bytes
        if self._block_listeners:
            self._notify_broadcast_block(src, dsts, msg_type, size_bytes,
                                         wire_bytes)
        self.stats.record_message_block(
            msg_type, size_bytes, src=src, dsts=dsts, wire_bytes=wire_bytes
        )
        delays = self._broadcast_delays(src, dsts, size_bytes)
        runtime = self._runtime
        now = self.simulator.now
        local_args: List[tuple] = []
        local_delays: List[float] = []
        for dst, delay in zip(dsts, delays.tolist()):
            if self._owns(dst):
                local_args.append(
                    (src, dst, msg_type, payload, size_bytes, wire_bytes)
                )
                local_delays.append(delay)
            else:
                runtime.append_record(
                    now + delay, src, dst, msg_type, payload, size_bytes,
                    wire_bytes, 1,
                )
        if local_args:
            self.simulator.schedule_batch(
                local_delays, self._deliver_lazy, local_args
            )
        return np.ones(count, dtype=bool)


class _ShardWorkerScenario(Scenario):
    """One shard's replica of the scenario, wired to the shard runtime.

    Under ``control_plane="directory"`` the replica sheds its O(N) control
    plane: the overlay is a *view* restored from the directory's startup
    snapshot (no joins computed locally), churn is a
    :class:`~repro.sim.churn.DirectoryChurnClient` forwarding start/stop
    through the barrier, served delta records apply at their exact virtual
    times, and per-peer state materializes only for owned peers.
    """

    sharded = True

    def __init__(self, config: ScenarioConfig, runtime: _ShardRuntime) -> None:
        self._runtime = runtime
        self.directory_mode = config.control_plane == "directory"
        if self.directory_mode and runtime.snapshot is None:
            raise ConfigurationError(
                "directory-mode shard worker needs the control plane's "
                "overlay snapshot"
            )
        super().__init__(config)
        runtime.network = self.network
        if self.directory_mode:
            runtime.control_sink = self._schedule_control_records

    @property
    def shard_id(self) -> int:
        return self._runtime.shard_id

    def add_barrier_hook(self, hook: Callable[[int], None]) -> bool:
        """Register an accounting-only observer called with the window index
        at every window barrier.  Returns True — the sharded kernel has
        barriers (the unsharded base returns False)."""
        self._runtime.barrier_hooks.append(hook)
        return True

    def _make_simulator(self) -> Simulator:
        return ShardSimulator(self.config.seed, self._runtime)

    def _make_network(self) -> PhysicalNetwork:
        return ShardNetwork(
            self.simulator,
            latency=self._make_latency(),
            stats=self.stats,
            rng_for_src=self.streams.net_rng,
            loss_rng_for_src=self.streams.loss_rng,
            runtime=self._runtime,
        )

    def _build_overlay(self):
        if not self.directory_mode:
            return super()._build_overlay()
        # Directory-served view: restore the authoritative snapshot instead
        # of computing N joins + finalization (entries_built stays 0).
        overlay = self.config.build_overlay()
        overlay.restore_state(self._runtime.snapshot)
        return overlay

    def _make_churn_driver(self):
        if not self.directory_mode:
            return super()._make_churn_driver()
        return DirectoryChurnClient(
            self.simulator, self.churn_model, self._runtime.request_control
        )

    def _schedule_control_records(
        self, records: List[ControlRecord]
    ) -> None:
        """Schedule a window's served deltas at their exact virtual times.

        Records arrive in the directory's emission order; equal-time records
        keep that order through the kernel's tie-breaking sequence numbers.
        Service traffic is accounted outside the golden fingerprint
        (:meth:`StatsCollector.record_directory`).
        """
        edits = sum(
            len(payload) for _, kind, payload in records
            if kind == "maintenance"
        )
        self.stats.record_directory(
            len(records), payload_size(records), edits=edits
        )
        self.simulator.schedule_batch_at(
            [record[0] for record in records],
            self._apply_control_record,
            ((record,) for record in records),
        )

    def owns(self, address: int) -> bool:
        return self._runtime.owns(address)

    def owns_control(self) -> bool:
        return self._runtime.shard_id == 0

    def materializes(self, address: int) -> bool:
        return not self.directory_mode or self._runtime.owns(address)


# ---------------------------------------------------------------------------
# Window coordination (shared by both executors).
# ---------------------------------------------------------------------------


@dataclass
class _Decision:
    """One window barrier's coordinator verdict, identical for all shards
    except for the per-shard inbox."""

    window_start: float = _INF
    global_last: float = -_INF
    total_executed: int = 0
    #: SoA path: ``ExchangeFrame`` per sender shard (src-shard order);
    #: scalar path: pre-sorted ``ExchangeRecord`` tuples
    inbox: List[Any] = field(default_factory=list)
    #: directory mode: this window's served control-plane delta records,
    #: identical for every shard (application is ownership-gated)
    control: List[ControlRecord] = field(default_factory=list)
    error: Optional[str] = None


class _Channel:
    """Worker-side endpoint of the barrier protocol.

    Channels own the window-local exchange accounting
    (:attr:`exchange` — frames/records/bytes counters, the
    ``StatsCollector.exchange`` families) because columnarization and
    shipping happen inside :meth:`sync`; :func:`_worker_body` folds the
    counter into the worker's stats once the workload finishes.
    """

    def __init__(self) -> None:
        self.exchange: Counter = Counter()
        #: worker-side fault-plane accounting (stalls survived etc.),
        #: folded into ``StatsCollector.faults`` like :attr:`exchange`
        self.faults: Counter = Counter()

    def sync(
        self,
        outbound: List[List[ExchangeRecord]],
        next_time: float,
        last_time: float,
        executed: int,
        requests: List[Tuple[str, float]],
        extras: Optional[dict] = None,
    ) -> _Decision:
        raise NotImplementedError

    def finish(self, payload: Any) -> None:
        raise NotImplementedError

    def fail(self, message: str) -> None:
        raise NotImplementedError

    def _frames_from_outbound(
        self, outbound: List[List[ExchangeRecord]]
    ) -> List[Optional[ExchangeFrame]]:
        """Columnarize one window's outboxes (None for empty ones)."""
        frames: List[Optional[ExchangeFrame]] = [None] * len(outbound)
        exchange = self.exchange
        for dst_shard, box in enumerate(outbound):
            if box:
                frame = ExchangeFrame.from_records(box)
                frames[dst_shard] = frame
                exchange["frames"] += 1
                exchange["records"] += frame.count
                exchange["pickled_records"] += frame.payload_count
        return frames


def _sort_inbox(inbox: List[ExchangeRecord]) -> List[ExchangeRecord]:
    """Deterministic injection order: (deliver_at, src_shard, seq)."""
    inbox.sort(key=lambda record: (record[0], record[1], record[2]))
    return inbox


def _agreed_requests(
    all_requests: List[List[Tuple[str, float]]],
) -> List[Tuple[str, float]]:
    """The barrier's control requests, verified SPMD-identical per shard."""
    first = all_requests[0]
    for requests in all_requests[1:]:
        if requests != first:
            raise SimulationError(
                "shard workers diverged: control requests differ across "
                f"shards at one barrier ({all_requests!r}) — the SPMD "
                "workload contract requires identical orchestration"
            )
    return first


def _decide(
    statuses: List[Tuple[List[List[ExchangeRecord]], float, float, int]],
) -> Tuple[float, float, int, List[List[ExchangeRecord]]]:
    """Route one barrier round: merge outboxes into per-shard inboxes and
    compute the next window start (global minimum next-event time, counting
    just-routed in-flight records), the agreed last-event clock, and the
    global executed-event total."""
    num_shards = len(statuses)
    inboxes: List[List[ExchangeRecord]] = [[] for _ in range(num_shards)]
    window_start = _INF
    global_last = -_INF
    total_executed = 0
    for outbound, next_time, last_time, executed in statuses:
        window_start = min(window_start, next_time)
        global_last = max(global_last, last_time)
        total_executed += executed
        for dst_shard, records in enumerate(outbound):
            if records:
                inboxes[dst_shard].extend(records)
    for box in inboxes:
        if box:
            window_start = min(
                window_start, min(record[0] for record in box)
            )
            _sort_inbox(box)
    return window_start, global_last, total_executed, inboxes


def _decide_frames(
    statuses: List[Tuple[List[Optional[ExchangeFrame]], float, float, int]],
) -> Tuple[float, float, int, List[List[ExchangeFrame]]]:
    """:func:`_decide` for the SoA path: outboxes arrive pre-columnarized
    (one frame or None per destination), so routing is pure pointer moves —
    per-shard inboxes collect frames in src-shard order and the cross-frame
    sort happens once, receiver-side, in :func:`merge_frames`."""
    num_shards = len(statuses)
    inboxes: List[List[ExchangeFrame]] = [[] for _ in range(num_shards)]
    window_start = _INF
    global_last = -_INF
    total_executed = 0
    for frames, next_time, last_time, executed in statuses:
        window_start = min(window_start, next_time)
        global_last = max(global_last, last_time)
        total_executed += executed
        for dst_shard, frame in enumerate(frames):
            if frame is not None:
                inboxes[dst_shard].append(frame)
                window_start = min(window_start, frame.min_time)
    return window_start, global_last, total_executed, inboxes


# ---------------------------------------------------------------------------
# Serial executor: lockstep worker threads, in-memory exchange.
# ---------------------------------------------------------------------------


class _ThreadChannel(_Channel):
    def __init__(
        self,
        shard_id: int,
        to_coordinator: "queue.Queue",
        from_coordinator: "queue.Queue",
        use_frames: bool = True,
    ) -> None:
        super().__init__()
        self.shard_id = shard_id
        self.to_coordinator = to_coordinator
        self.from_coordinator = from_coordinator
        self.use_frames = use_frames

    def sync(
        self, outbound, next_time, last_time, executed, requests, extras=None
    ) -> _Decision:
        if self.use_frames:
            # Columnarize worker-side (in parallel across threads); frames
            # cross to the coordinator by reference — nothing is copied or
            # encoded on the serial executor.
            outbound = self._frames_from_outbound(outbound)
        self.to_coordinator.put(
            (
                self.shard_id,
                "sync",
                (outbound, next_time, last_time, executed, requests, extras),
            )
        )
        return self.from_coordinator.get()

    def finish(self, payload: Any) -> None:
        self.to_coordinator.put((self.shard_id, "done", payload))

    def fail(self, message: str) -> None:
        self.to_coordinator.put((self.shard_id, "error", message))


def _worker_body(
    config: ScenarioConfig,
    workload: Workload,
    runtime: _ShardRuntime,
    wal_cadence: int = 0,
) -> Any:
    scenario = _ShardWorkerScenario(config, runtime)
    probe = None
    if wal_cadence:
        probe = WalProbe(scenario, wal_cadence)
        runtime.wal_probe = probe
    result = workload(scenario)
    # Fold the channel's exchange accounting (frames shipped, records,
    # encoded bytes, fallbacks) into the worker's collector; merged
    # parent-side like the directory counters, never fingerprinted.
    if runtime.channel.exchange:
        scenario.stats.exchange.update(runtime.channel.exchange)
    # Same for the worker-side fault-plane counters (survived stalls):
    # execution-shape accounting, merged but never fingerprinted.
    if runtime.channel.faults:
        scenario.stats.faults.update(runtime.channel.faults)
    if probe is not None:
        # Fourth element: the WAL tail (post-barrier stats delta + final
        # cursors), sealed into the commit record coordinator-side.
        return (scenario.stats, scenario.simulator.now, result, probe.tail())
    return (scenario.stats, scenario.simulator.now, result)


def _run_serial(
    config: ScenarioConfig, workload: Workload, num_shards: int,
    lookahead: float, plane: Optional[DirectoryControlPlane] = None,
    use_frames: bool = True, wal: Optional[WalSession] = None,
) -> Tuple[List[tuple], int, Counter]:
    to_coordinator: "queue.Queue" = queue.Queue()
    from_coordinator = [queue.Queue() for _ in range(num_shards)]
    snapshot = plane.snapshot if plane is not None else None
    wal_cadence = wal.cursor_every if wal is not None else 0

    def worker(shard_id: int) -> None:
        channel = _ThreadChannel(
            shard_id, to_coordinator, from_coordinator[shard_id],
            use_frames=use_frames,
        )
        try:
            runtime = _ShardRuntime(
                shard_id, num_shards, channel, lookahead, snapshot=snapshot
            )
            channel.finish(
                _worker_body(config, workload, runtime, wal_cadence)
            )
        except BaseException:
            channel.fail(traceback.format_exc())

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(num_shards)
    ]
    for thread in threads:
        thread.start()

    payloads: List[Optional[tuple]] = [None] * num_shards
    windows = 0
    while True:
        round_messages: Dict[int, Tuple[str, Any]] = {}
        while len(round_messages) < num_shards:
            shard_id, kind, payload = to_coordinator.get()
            if shard_id in round_messages:
                raise SimulationError(
                    f"shard {shard_id} raced the window barrier"
                )
            round_messages[shard_id] = (kind, payload)
        kinds = {kind for kind, _ in round_messages.values()}
        if "error" in kinds:
            error = next(
                payload
                for kind, payload in round_messages.values()
                if kind == "error"
            )
            for shard_id, (kind, _) in round_messages.items():
                if kind == "sync":
                    from_coordinator[shard_id].put(_Decision(error=error))
            raise SimulationError(f"shard worker failed:\n{error}")
        if kinds == {"done"}:
            for shard_id, (_, payload) in round_messages.items():
                payloads[shard_id] = payload
            break
        if kinds != {"sync"}:
            error = "shard workers diverged (mixed done/sync at one barrier)"
            for shard_id, (kind, _) in round_messages.items():
                if kind == "sync":
                    from_coordinator[shard_id].put(_Decision(error=error))
            raise SimulationError(error)
        statuses = [round_messages[i][1] for i in range(num_shards)]
        decide = _decide_frames if use_frames else _decide
        window_start, global_last, total_executed, inboxes = decide(
            [status[:4] for status in statuses]
        )
        control: List[ControlRecord] = []
        if plane is not None:
            # The coordinator IS the directory: fold in the shards' control
            # requests, let the timeline's next event open a window even
            # when every worker heap is idle, and publish the window's
            # deltas with the decision (one window ahead of execution).
            plane.handle_requests(
                _agreed_requests([status[4] for status in statuses])
            )
            window_start = min(window_start, plane.next_time())
            if window_start != _INF:
                control = plane.advance(window_start + lookahead)
        if wal is not None:
            # The serial executor never encodes frames for transport, so
            # the WAL encodes them here (same bytes the mp workers ship).
            frame_blobs: Dict[Tuple[int, int], bytes] = {}
            for src_shard, status in enumerate(statuses):
                for dst_shard, frame in enumerate(status[0]):
                    if frame is not None:
                        frame_blobs[(src_shard, dst_shard)] = (
                            frame.encode(windows)
                        )
            try:
                wal.on_window(
                    barrier=windows,
                    window_start=window_start,
                    global_last=global_last,
                    total_executed=total_executed,
                    statuses=[status[1:6] for status in statuses],
                    frames=frame_blobs,
                    control=control,
                )
            except SimulationError as exc:
                for shard_id in range(num_shards):
                    from_coordinator[shard_id].put(_Decision(error=str(exc)))
                raise
        windows += 1
        for shard_id in range(num_shards):
            from_coordinator[shard_id].put(
                _Decision(
                    window_start=window_start,
                    global_last=global_last,
                    total_executed=total_executed,
                    inbox=inboxes[shard_id],
                    control=control,
                )
            )
    for thread in threads:
        thread.join(timeout=30.0)
    # Third element: coordinator-side fault/recovery counters — always
    # empty here (only the tcp supervision loop injects and recovers).
    return payloads, windows, Counter()


# ---------------------------------------------------------------------------
# Multiprocessing executor: one forked worker per shard.
# ---------------------------------------------------------------------------


#: how a window frame travels to its receiver (per destination shard):
#: nothing sent / shared-memory ring / queue (scalar path, or a frame too
#: large for its ring)
_VIA_NONE, _VIA_RING, _VIA_QUEUE = 0, 1, 2


class _ProcessChannel(_Channel):
    """Worker endpoint: control over a pipe to the parent coordinator, bulk
    exchange frames through shared-memory rings (peer to peer — the parent
    never relays payload bytes, only counts, via codes, and window
    decisions).

    The SoA default encodes each destination's outbox into one
    length-prefixed :class:`ExchangeFrame` blob and publishes it on the
    ``(src, dst)`` :class:`ShardRing` — zero per-record pickling, and no
    feeder threads or fds involved.  The sender can run at most one barrier
    ahead (the coordinator withholds the next decision until every shard
    has synced), so ring occupancy is bounded by two windows of traffic;
    a frame that still does not fit is **never** waited on — a writer
    blocking inside the barrier handshake would deadlock the fleet — and
    falls back to one queue put of the same blob, flagged ``_VIA_QUEUE`` in
    the sync so the receiver knows where to look.

    Queue batches (fallbacks, and the whole ``REPRO_SCALAR_EXCHANGE=1``
    path) are tagged with their barrier index: queue puts are flushed by a
    background feeder thread, so a fast shard's barrier-``n+1`` batch can
    reach a receiver before a slow shard's barrier-``n`` batch.  Early
    arrivals are stashed until their barrier comes up.  Ring frames need no
    stash: each ring is SPSC FIFO, so per sender they surface in barrier
    order, and the barrier tag in the frame header is verified on decode.
    All receive waits carry the ``REPRO_EXCHANGE_TIMEOUT_S`` deadline — a
    sender that died mid-window surfaces as a loud error, never a hang.
    """

    def __init__(
        self, shard_id, num_shards, connection, data_queues,
        rings: Optional[RingExchange] = None, use_frames: bool = True,
        ship_wal_blobs: bool = False,
    ) -> None:
        super().__init__()
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.connection = connection
        self.data_queues = data_queues
        self.rings = rings
        self.use_frames = use_frames
        #: WAL runs: also hand the coordinator each window's encoded frame
        #: blobs inside the sync message (the rings are peer-to-peer, so
        #: the parent never sees payload bytes otherwise)
        self.ship_wal_blobs = ship_wal_blobs
        self.timeout = exchange_timeout_seconds()
        self._barrier = 0
        #: early queue batches keyed by (barrier, src_shard); values are
        #: encoded frame blobs (SoA fallback) or record lists (scalar path)
        self._stash: Dict[Tuple[int, int], Any] = {}

    # -- send side ----------------------------------------------------------

    def _ship(
        self, outbound, barrier
    ) -> Tuple[List[int], List[int], float, Optional[List[Tuple[int, bytes]]]]:
        """Encode and publish one window's outboxes; returns per-dst record
        counts, via codes, the minimum outbound delivery time, and (WAL
        runs only) the encoded blobs for the coordinator's log."""
        counts = [len(box) for box in outbound]
        vias = [_VIA_NONE] * self.num_shards
        min_outbound = _INF
        wal_blobs: Optional[List[Tuple[int, bytes]]] = (
            [] if self.ship_wal_blobs else None
        )
        exchange = self.exchange
        for dst_shard, box in enumerate(outbound):
            if not box:
                continue
            if self.use_frames:
                frame = ExchangeFrame.from_records(box)
                min_outbound = min(min_outbound, frame.min_time)
                blob = frame.encode(barrier)
                exchange["frames"] += 1
                exchange["records"] += frame.count
                exchange["encoded_bytes"] += len(blob)
                exchange["pickled_records"] += frame.payload_count
                if wal_blobs is not None:
                    wal_blobs.append((dst_shard, blob))
                ring = (
                    self.rings.ring(self.shard_id, dst_shard)
                    if self.rings is not None
                    else None
                )
                if ring is not None and ring.try_push(blob):
                    vias[dst_shard] = _VIA_RING
                else:
                    exchange["queue_fallbacks"] += 1
                    vias[dst_shard] = _VIA_QUEUE
                    self.data_queues[dst_shard].put(
                        (self.shard_id, barrier, blob)
                    )
            else:
                min_outbound = min(
                    min_outbound, min(record[0] for record in box)
                )
                vias[dst_shard] = _VIA_QUEUE
                self.data_queues[dst_shard].put((self.shard_id, barrier, box))
        return counts, vias, min_outbound, wal_blobs

    # -- receive side -------------------------------------------------------

    def _collect_queue(self, barrier: int, expected: set) -> Dict[int, Any]:
        """Drain the shard's queue until every expected sender's batch for
        this barrier has arrived (stashing early ones)."""
        batches: Dict[int, Any] = {}
        for src_shard in list(expected):
            stashed = self._stash.pop((barrier, src_shard), None)
            if stashed is not None:
                batches[src_shard] = stashed
                expected.discard(src_shard)
        while expected:
            try:
                src_shard, batch_barrier, batch = (
                    self.data_queues[self.shard_id].get(timeout=self.timeout)
                )
            except queue.Empty:
                raise SimulationError(
                    f"shard {self.shard_id}: exchange queue starved for "
                    f"{self.timeout:.0f}s waiting on shards "
                    f"{sorted(expected)} at barrier {barrier}; a sender "
                    "likely died mid-window"
                ) from None
            if batch_barrier == barrier and src_shard in expected:
                expected.discard(src_shard)
                batches[src_shard] = batch
            elif batch_barrier > barrier:
                self._stash[(batch_barrier, src_shard)] = batch
            else:
                raise SimulationError(
                    f"shard {self.shard_id}: stale or duplicate exchange "
                    f"batch from shard {src_shard} "
                    f"(barrier {batch_barrier}, expected {barrier})"
                )
        return batches

    def _decode_frame(self, blob: bytes, barrier: int, src: int) -> ExchangeFrame:
        frame, frame_barrier = ExchangeFrame.decode(blob)
        if frame_barrier != barrier:
            raise SimulationError(
                f"shard {self.shard_id}: exchange frame from shard {src} "
                f"tagged barrier {frame_barrier}, expected {barrier}"
            )
        return frame

    def sync(
        self, outbound, next_time, last_time, executed, requests, extras=None
    ) -> _Decision:
        barrier = self._barrier
        self._barrier += 1
        counts, vias, min_outbound, wal_blobs = self._ship(outbound, barrier)
        self.connection.send(
            (
                "sync",
                (next_time, last_time, executed, counts, vias, min_outbound,
                 requests, extras, wal_blobs),
            )
        )
        kind, payload = self.connection.recv()
        if kind == "abort":
            return _Decision(error=payload)
        window_start, global_last, total_executed, senders, control = payload
        # senders: (src_shard, via) pairs in src-shard order.  Pop ring
        # frames first (they are already published — the sender pushed
        # before announcing its sync), then drain the queue for the rest.
        ring_frames: Dict[int, ExchangeFrame] = {}
        queue_expected = set()
        for src_shard, via in senders:
            if via == _VIA_RING:
                blob = self.rings.ring(src_shard, self.shard_id).pop_wait(
                    self.timeout,
                    context=(
                        f"shard {src_shard} -> {self.shard_id}, "
                        f"barrier {barrier}"
                    ),
                )
                ring_frames[src_shard] = self._decode_frame(
                    blob, barrier, src_shard
                )
            else:
                queue_expected.add(src_shard)
        batches = self._collect_queue(barrier, queue_expected)
        if self.use_frames:
            inbox: List[Any] = []
            for src_shard, via in senders:
                if via == _VIA_RING:
                    inbox.append(ring_frames[src_shard])
                else:
                    inbox.append(
                        self._decode_frame(
                            batches[src_shard], barrier, src_shard
                        )
                    )
        else:
            inbox = []
            for src_shard in sorted(batches):
                inbox.extend(batches[src_shard])
            inbox = _sort_inbox(inbox)
        return _Decision(
            window_start=window_start,
            global_last=global_last,
            total_executed=total_executed,
            inbox=inbox,
            control=control,
        )

    def finish(self, payload: Any) -> None:
        self.connection.send(("done", payload))

    def fail(self, message: str) -> None:
        self.connection.send(("error", message))


def _mp_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-fork platforms
        raise ConfigurationError(
            "the mp shard executor requires the fork start method "
            "(unavailable on this platform); use executor='serial'"
        ) from exc


def _run_mp(
    config: ScenarioConfig, workload: Workload, num_shards: int,
    lookahead: float, plane: Optional[DirectoryControlPlane] = None,
    use_frames: bool = True, wal: Optional[WalSession] = None,
) -> Tuple[List[tuple], int, Counter]:
    context = _mp_context()
    data_queues = [context.Queue() for _ in range(num_shards)]
    parent_connections = []
    processes = []
    # Directory mode: the plane (and its snapshot) is built in the parent
    # BEFORE forking, so every worker inherits the snapshot through fork
    # copy-on-write memory — snapshot distribution costs no pickling at all.
    snapshot = plane.snapshot if plane is not None else None
    # The ring grid likewise: one shared-memory segment mapped pre-fork, so
    # no names or fds cross the process boundary.  K=1 has no cross-shard
    # traffic and skips the mapping entirely.
    rings = (
        RingExchange(num_shards) if use_frames and num_shards > 1 else None
    )
    # WAL plumbing is captured pre-fork as plain values (the session object
    # itself — open file handle and all — stays parent-only).
    wal_cadence = wal.cursor_every if wal is not None else 0
    ship_wal_blobs = wal is not None

    def child_main(shard_id: int, connection) -> None:
        channel = _ProcessChannel(
            shard_id, num_shards, connection, data_queues,
            rings=rings, use_frames=use_frames,
            ship_wal_blobs=ship_wal_blobs,
        )
        try:
            runtime = _ShardRuntime(
                shard_id, num_shards, channel, lookahead, snapshot=snapshot
            )
            channel.finish(
                _worker_body(config, workload, runtime, wal_cadence)
            )
        except BaseException:
            try:
                channel.fail(traceback.format_exc())
            except Exception:
                pass
        try:
            connection.recv()  # parent's "bye": results landed, safe to exit
        except EOFError:
            pass
        os._exit(0)  # skip atexit/pytest teardown in the forked child

    for shard_id in range(num_shards):
        parent_end, child_end = context.Pipe()
        process = context.Process(
            target=child_main, args=(shard_id, child_end), daemon=True
        )
        process.start()
        child_end.close()
        parent_connections.append(parent_end)
        processes.append(process)

    payloads: List[Optional[tuple]] = [None] * num_shards
    windows = 0
    failure: Optional[str] = None
    try:
        while True:
            round_messages: Dict[int, Tuple[str, Any]] = {}
            for shard_id, connection in enumerate(parent_connections):
                try:
                    kind, payload = connection.recv()
                except EOFError:
                    # The worker died without a word (hard crash / kill):
                    # its pipe closed.  Treat like an error report so the
                    # rest of the fleet is aborted instead of left waiting
                    # at the barrier forever.
                    kind, payload = "error", (
                        f"shard worker {shard_id} died mid-window "
                        "(pipe closed without a sync/done/error message)"
                    )
                round_messages[shard_id] = (kind, payload)
            kinds = {kind for kind, _ in round_messages.values()}
            if "error" in kinds:
                failure = next(
                    payload
                    for kind, payload in round_messages.values()
                    if kind == "error"
                )
                for shard_id, (kind, _) in round_messages.items():
                    if kind == "sync":
                        try:
                            parent_connections[shard_id].send(
                                ("abort", failure)
                            )
                        except (BrokenPipeError, OSError):
                            pass
                raise SimulationError(f"shard worker failed:\n{failure}")
            if kinds == {"done"}:
                for shard_id, (_, payload) in round_messages.items():
                    payloads[shard_id] = payload
                break
            if kinds != {"sync"}:
                failure = (
                    "shard workers diverged (mixed done/sync at one barrier)"
                )
                for shard_id, (kind, _) in round_messages.items():
                    if kind == "sync":
                        parent_connections[shard_id].send(("abort", failure))
                raise SimulationError(failure)
            all_counts = []
            all_vias = []
            all_requests = []
            wal_statuses = []
            frame_blobs: Dict[Tuple[int, int], bytes] = {}
            window_start = _INF
            global_last = -_INF
            total_executed = 0
            for shard_id in range(num_shards):
                (next_time, last_time, executed, counts, vias, min_outbound,
                 requests, extras, wal_blobs) = round_messages[shard_id][1]
                window_start = min(window_start, next_time, min_outbound)
                global_last = max(global_last, last_time)
                total_executed += executed
                all_counts.append(counts)
                all_vias.append(vias)
                all_requests.append(requests)
                if wal is not None:
                    wal_statuses.append(
                        (next_time, last_time, executed, requests, extras)
                    )
                    for dst_shard, blob in wal_blobs or ():
                        frame_blobs[(shard_id, dst_shard)] = blob
            control: List[ControlRecord] = []
            if plane is not None:
                plane.handle_requests(_agreed_requests(all_requests))
                window_start = min(window_start, plane.next_time())
                if window_start != _INF:
                    control = plane.advance(window_start + lookahead)
            if wal is not None:
                try:
                    wal.on_window(
                        barrier=windows,
                        window_start=window_start,
                        global_last=global_last,
                        total_executed=total_executed,
                        statuses=wal_statuses,
                        frames=frame_blobs,
                        control=control,
                    )
                except SimulationError as exc:
                    failure = str(exc)
                    for shard_id in range(num_shards):
                        try:
                            parent_connections[shard_id].send(
                                ("abort", failure)
                            )
                        except (BrokenPipeError, OSError):
                            pass
                    raise
            windows += 1
            for shard_id in range(num_shards):
                senders = [
                    (src_shard, all_vias[src_shard][shard_id])
                    for src_shard in range(num_shards)
                    if all_counts[src_shard][shard_id] > 0
                ]
                parent_connections[shard_id].send(
                    (
                        "decision",
                        (window_start, global_last, total_executed, senders,
                         control),
                    )
                )
    finally:
        for connection in parent_connections:
            try:
                connection.send(("bye", None))
            except (BrokenPipeError, OSError):
                pass
        for process in processes:
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5.0)
        for connection in parent_connections:
            connection.close()
        for data_queue in data_queues:
            # Explicit teardown: the parent never enqueues, so there is
            # nothing for its feeder thread to flush — cancel the
            # join-thread handshake outright rather than leaving close()'s
            # implicit join to block interpreter exit on a wedged feeder
            # (workers exit via os._exit and cannot wedge theirs).
            data_queue.cancel_join_thread()
            data_queue.close()
        if rings is not None:
            rings.destroy()
    return payloads, windows, Counter()


# ---------------------------------------------------------------------------
# Public API.
# ---------------------------------------------------------------------------


@dataclass
class ShardedRun:
    """Merged outcome of one sharded execution."""

    stats: StatsCollector
    now: float
    results: List[Any]
    shards: int
    executor: str
    lookahead: float
    #: window barriers the run synchronized at (diagnostics: with window
    #: skipping this is bounded by the number of event clusters, not the
    #: virtual duration / lookahead)
    windows: int
    #: "replicated" (PR 4 SPMD control plane) or "directory"
    control_plane: str = "replicated"
    #: directory mode: delta records / route-table edits the control plane
    #: published, and their modelled service bytes (snapshot included) —
    #: diagnostics, never part of the digest
    control_records: int = 0
    control_edits: int = 0
    control_bytes: int = 0

    def digest(self) -> str:
        """Golden-suite-comparable digest (fingerprint + final clock)."""
        return scenario_digest(self.stats, self.now)


class ShardedScenario:
    """K-shard execution harness behind one API for every executor.

    ``run(workload)`` executes the SPMD ``workload(scenario)`` callable on
    every shard worker (serial threads, forked processes, or tcp-connected
    workers per ``executor``), merges the per-shard
    :class:`StatsCollector`s in shard
    order, and agrees the final virtual clock — producing observables
    byte-identical to the unsharded kernel running the same config.
    """

    def __init__(
        self, config: ScenarioConfig, executor: Optional[str] = None
    ) -> None:
        config.validate()
        if config.shards < 1:
            raise ConfigurationError(
                "ShardedScenario needs config.shards >= 1"
            )
        self.config = config
        self.executor = executor if executor is not None else config.executor
        if self.executor not in ("serial", "mp", "tcp"):
            raise ConfigurationError(f"unknown executor {self.executor!r}")
        self.lookahead = compute_lookahead(
            LatencyModel(
                base_latency=config.base_latency,
                bandwidth=config.bandwidth,
                drop_probability=config.drop_probability,
                jitter_floor=config.jitter_floor,
            )
        )

    def run(self, workload: Workload) -> ShardedRun:
        if self.executor == "tcp":
            # Socket executor lives in its own module; imported lazily so
            # serial/mp runs never touch it.
            from repro.sim.tcpexec import run_tcp

            runner = run_tcp
        else:
            runner = _run_serial if self.executor == "serial" else _run_mp
        plan = FaultPlan.parse(self.config.faults)
        if plan is not None and self.executor != "tcp":
            # Enforced here, not in validate(): the executor argument can
            # override config.executor, and only the tcp fleet has the
            # supervision loop (and separate worker processes) the fault
            # plane targets — os._exit under serial/mp would kill the run.
            raise ConfigurationError(
                "fault injection (config.faults) targets the tcp "
                "executor's self-healing fleet; the serial/mp executors "
                "have no supervision loop to recover injected faults "
                f"(this run uses executor={self.executor!r})"
            )
        if plan is not None and self.config.resume:
            # Injected torn tails apply to the resume log before the
            # WalSession opens it — WalReader discards the torn record
            # and the run replays the shorter verified prefix.
            plan.apply_wal_tears(self.config.resume, self.config.shards)
        plane = (
            DirectoryControlPlane(self.config)
            if self.config.control_plane == "directory"
            else None
        )
        # Read the exchange-path switch exactly once per run, in the
        # parent, so workers can never disagree about the wire format.
        use_frames = not scalar_exchange_enabled()
        wal = (
            WalSession(
                self.config, self.config.shards, self.lookahead, use_frames,
                retain_records=(self.executor == "tcp"),
            )
            if (self.config.wal or self.config.resume)
            else None
        )
        try:
            payloads, windows, run_faults = runner(
                self.config, workload, self.config.shards, self.lookahead,
                plane=plane, use_frames=use_frames, wal=wal,
            )
            merged = StatsCollector()
            now = -_INF
            results = []
            tails: List[Optional[dict]] = []
            for payload in payloads:
                stats, worker_now, result = payload[0], payload[1], payload[2]
                tails.append(payload[3] if len(payload) > 3 else None)
                merged.merge(stats)
                now = max(now, worker_now)
                results.append(result)
            # Coordinator-side fault/recovery accounting (respawns, WAL
            # windows replayed, heartbeats) joins the workers' counters.
            if run_faults:
                merged.faults.update(run_faults)
            run = ShardedRun(
                stats=merged,
                now=now,
                results=results,
                shards=self.config.shards,
                executor=self.executor,
                lookahead=self.lookahead,
                windows=windows,
                control_plane=self.config.control_plane,
                control_records=plane.records_emitted if plane else 0,
                control_edits=plane.edits_emitted if plane else 0,
                control_bytes=(
                    plane.snapshot_bytes + plane.record_bytes if plane else 0
                ),
            )
            if wal is not None:
                wal.finish(run.digest(), run.now, windows, tails)
            return run
        finally:
            if wal is not None:
                wal.close()


def run_sharded(
    config: ScenarioConfig,
    workload: Workload,
    executor: Optional[str] = None,
) -> ShardedRun:
    """Convenience wrapper: ``ShardedScenario(config, executor).run(...)``."""
    return ShardedScenario(config, executor=executor).run(workload)
