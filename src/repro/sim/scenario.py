"""Scenario configuration and assembly (P2PDMT's "Set parameters" box).

A :class:`ScenarioConfig` captures every knob the demo varies: network size,
overlay type, churn model, physical-network parameters, and the data
size/class distribution.  :class:`Scenario` assembles the simulator, network,
overlay, churn driver, and stats into one ready-to-run environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.overlay import make_overlay, overlay_names
from repro.overlay.base import Overlay
from repro.sim.codec import codec_names, make_codec_table, register_traffic_class
from repro.sim.churn import (
    ChurnDriver,
    ChurnModel,
    ExponentialChurn,
    NoChurn,
    ParetoChurn,
    WeibullChurn,
)
from repro.sim.distribution import ShardSpec
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, PeerStreams, PhysicalNetwork
from repro.sim.node import SimNode
from repro.sim.stats import StatsCollector
from repro.sim.transport import Transport


@dataclass
class ScenarioConfig:
    """Everything needed to reproduce one simulated P2P environment."""

    num_peers: int = 32
    overlay: str = "chord"  # any name in repro.overlay.overlay_names()
    churn: str = "none"  # "none" | "exponential" | "weibull" | "pareto"
    mean_session: float = 600.0
    mean_downtime: float = 60.0
    base_latency: float = 0.05
    bandwidth: float = 1_000_000.0
    drop_probability: float = 0.0
    unstructured_degree: int = 4
    stabilize_interval: float = 30.0
    shard: ShardSpec = field(default_factory=lambda: ShardSpec(num_peers=32))
    codec: str = "identity"  # any name in repro.sim.codec.codec_names()
    #: randomness layout: "stream" draws everything from the simulator's
    #: single seeded generator in event order (the legacy mode, required for
    #: the pre-shard golden digests); "perpeer" decomposes jitter/loss/churn
    #: into per-peer streams (repro.sim.network.PeerStreams), making draw
    #: values independent of cross-peer event interleaving — the invariant
    #: sharded execution needs.
    rng_mode: str = "stream"
    #: lower clamp on the jitter draw; must be positive for sharded runs
    #: (it bounds the minimum cross-shard latency, i.e. the lookahead).
    jitter_floor: float = 0.0
    #: event-kernel shards: 0 = single-heap kernel; >= 1 runs through
    #: repro.sim.shard.ShardedScenario (peers partitioned across heaps,
    #: advanced in conservative virtual-time windows).
    shards: int = 0
    #: sharded executor: "serial" (lockstep in one process, the
    #: deterministic reference), "mp" (one worker process per shard), or
    #: "tcp" (a coordinator plus socket-connected workers, possibly on
    #: other machines — repro.sim.tcpexec).
    executor: str = "serial"
    #: tcp executor: the coordinator's bind address (port 0 = ephemeral,
    #: the default for localhost test fleets) ...
    tcp_host: str = "127.0.0.1"
    tcp_port: int = 0
    #: ... and worker placement: a comma-separated spec with one entry per
    #: shard (or one entry for all) — "local" spawns `repro worker`
    #: subprocesses here, "wait" expects externally launched workers to
    #: connect in, "ssh:HOST" spawns them over ssh.  Like wal/resume this
    #: is plumbing, not physics: excluded from the WAL config fingerprint.
    tcp_hosts: Optional[str] = None
    #: sharded control plane: "replicated" (every worker replays churn
    #: timelines and overlay maintenance for all N peers — the PR 4 SPMD
    #: scheme) or "directory" (one authoritative control plane owns them,
    #: publishes an overlay snapshot at startup plus per-window delta
    #: records, and workers apply deltas at barriers — per-worker control
    #: and construction cost drops to O(N/K)).
    control_plane: str = "replicated"
    #: simulation WAL (repro.sim.wal): checkpoint the run's window stream
    #: to this path ...
    wal: Optional[str] = None
    #: ... and/or resume (verified prefix replay) from this log.  Both are
    #: log plumbing, not physics — they never change the event stream and
    #: are excluded from the WAL's own config fingerprint.
    resume: Optional[str] = None
    #: seeded fault-injection schedule (repro.sim.faults.FaultPlan spec,
    #: e.g. "seed=7,crash@2") for the tcp executor's self-healing fleet.
    #: Like the tcp placement fields this is execution shape, not physics
    #: — the schedule draws from its own splitmix64 stream, recovery
    #: replays the WAL prefix, and golden digests cannot move — so it is
    #: excluded from the WAL config fingerprint.
    faults: Optional[str] = None
    seed: int = 0

    def validate(self) -> None:
        if self.num_peers <= 0:
            raise ConfigurationError("num_peers must be positive")
        if self.overlay not in overlay_names():
            raise ConfigurationError(f"unknown overlay {self.overlay!r}")
        if self.churn not in ("none", "exponential", "weibull", "pareto"):
            raise ConfigurationError(f"unknown churn model {self.churn!r}")
        if self.codec not in codec_names():
            raise ConfigurationError(f"unknown codec {self.codec!r}")
        if self.rng_mode not in ("stream", "perpeer"):
            raise ConfigurationError(f"unknown rng_mode {self.rng_mode!r}")
        if self.executor not in ("serial", "mp", "tcp"):
            raise ConfigurationError(f"unknown executor {self.executor!r}")
        if not 0 <= self.tcp_port <= 65535:
            raise ConfigurationError(
                f"tcp_port must be in [0, 65535], got {self.tcp_port}"
            )
        if self.tcp_hosts is not None:
            entries = [e.strip() for e in self.tcp_hosts.split(",")]
            for entry in entries:
                if entry in ("local", "wait") or entry.startswith("ssh:"):
                    continue
                raise ConfigurationError(
                    f"unknown tcp hosts entry {entry!r}; expected 'local', "
                    "'wait', or 'ssh:HOST'"
                )
        if self.control_plane not in ("replicated", "directory"):
            raise ConfigurationError(
                f"unknown control plane {self.control_plane!r}"
            )
        if self.control_plane == "directory" and self.shards < 1:
            raise ConfigurationError(
                "the directory control plane only applies to sharded "
                "execution (set shards >= 1)"
            )
        if self.shards < 0:
            raise ConfigurationError("shards must be >= 0")
        if not 0.0 <= self.jitter_floor <= 1.0:
            raise ConfigurationError("jitter_floor must be in [0, 1]")
        if self.shards >= 1:
            if self.rng_mode != "perpeer":
                raise ConfigurationError(
                    "sharded execution requires rng_mode='perpeer' (a single "
                    "RNG stream cannot be split across shard heaps)"
                )
            if self.jitter_floor <= 0.0:
                raise ConfigurationError(
                    "sharded execution requires jitter_floor > 0 (it bounds "
                    "the cross-shard lookahead window)"
                )
        if (self.wal or self.resume) and self.shards < 1:
            raise ConfigurationError(
                "the simulation WAL hooks the sharded kernel's window "
                "barriers (set shards >= 1 to use wal/resume)"
            )
        if self.faults:
            if self.shards < 1:
                raise ConfigurationError(
                    "fault injection targets the sharded tcp fleet "
                    "(set shards >= 1 to use faults)"
                )
            from repro.sim.faults import FaultPlan

            FaultPlan.parse(self.faults)  # grammar errors surface here
        if self.shard.num_peers != self.num_peers:
            raise ConfigurationError(
                "shard.num_peers must equal num_peers "
                f"({self.shard.num_peers} != {self.num_peers})"
            )

    def build_churn_model(self) -> ChurnModel:
        if self.churn == "none":
            return NoChurn()
        if self.churn == "exponential":
            return ExponentialChurn(self.mean_session, self.mean_downtime)
        if self.churn == "weibull":
            return WeibullChurn(
                scale_session=self.mean_session, mean_downtime=self.mean_downtime
            )
        return ParetoChurn(
            minimum_session=self.mean_session / 3.0,
            mean_downtime=self.mean_downtime,
        )

    def build_overlay(self) -> Overlay:
        return make_overlay(
            self.overlay, seed=self.seed, degree=self.unstructured_degree
        )


class Scenario:
    """An assembled simulation environment.

    Peers get physical addresses 0..num_peers-1, join the overlay, and are
    registered on the physical network.  Churn (if any) keeps overlay
    membership in sync and schedules periodic stabilization.
    """

    #: True on shard-worker subclasses (repro.sim.shard): a plain Scenario
    #: refuses configs demanding sharded execution.
    sharded = False

    #: True on directory-mode shard workers: overlay state is served by the
    #: directory control plane (snapshot + per-window deltas) and per-peer
    #: state materializes only for owned peers.
    directory_mode = False

    def __init__(self, config: ScenarioConfig) -> None:
        config.validate()
        if config.shards >= 1 and not self.sharded:
            raise ConfigurationError(
                "config requests sharded execution (shards="
                f"{config.shards}); build it through "
                "repro.sim.shard.ShardedScenario"
            )
        self.config = config
        self.streams: Optional[PeerStreams] = (
            PeerStreams(config.seed) if config.rng_mode == "perpeer" else None
        )
        self.simulator = self._make_simulator()
        self.stats = StatsCollector()
        self.network = self._make_network()
        self.peer_addresses: List[int] = list(range(config.num_peers))
        #: per-peer states (SimNodes / handler registrations) built by THIS
        #: kernel — ≈ N/K on a directory-mode shard worker, N otherwise
        #: (see construction_cost)
        self.peers_materialized = 0
        self.overlay = self._build_overlay()
        self.codec_table = make_codec_table(config.codec)
        self.transport = Transport(
            self.network,
            overlay=self.overlay,
            stats=self.stats,
            codec=self.codec_table,
        )

        self.churn_model = config.build_churn_model()
        self.churn_driver = self._make_churn_driver()
        self._stabilize_scheduled = False

    # -- construction hooks (overridden by shard workers) ---------------

    def _make_simulator(self) -> Simulator:
        return Simulator(seed=self.config.seed)

    def _build_overlay(self) -> Overlay:
        """Construct the overlay with every peer joined and tables built.

        Directory-mode shard workers override this: they restore the
        directory's startup snapshot instead of recomputing N joins worth
        of routing state.
        """
        overlay = self.config.build_overlay()
        for address in self.peer_addresses:
            overlay.join(address)
        stabilize = getattr(overlay, "stabilize", None)
        if callable(stabilize):
            stabilize()
        return overlay

    def _make_churn_driver(self):
        """The churn process driver (directory workers use a served client)."""
        return ChurnDriver(
            self.simulator,
            self.network,
            self.churn_model,
            on_leave=self._on_peer_leave,
            on_join=self._on_peer_join,
            rng_for=self.streams.churn_rng if self.streams else None,
        )

    def _make_network(self) -> PhysicalNetwork:
        return PhysicalNetwork(
            self.simulator,
            latency=self._make_latency(),
            stats=self.stats,
            rng_for_src=self.streams.net_rng if self.streams else None,
            loss_rng_for_src=self.streams.loss_rng if self.streams else None,
        )

    def _make_latency(self) -> LatencyModel:
        return LatencyModel(
            base_latency=self.config.base_latency,
            bandwidth=self.config.bandwidth,
            drop_probability=self.config.drop_probability,
            jitter_floor=self.config.jitter_floor,
        )

    # -- ownership hooks -------------------------------------------------
    #
    # In a sharded run every shard worker replicates the *global* control
    # processes (churn timelines, overlay maintenance) to keep its replicas
    # in sync, but each observable must be accounted exactly once across
    # the fleet.  These hooks gate per-peer accounting to the peer's owning
    # shard and run-global accounting to shard 0; on the single-heap
    # kernel they are constant True, and the gated code paths are
    # byte-identical to the ungated originals.

    @property
    def shard_id(self) -> int:
        """This kernel's shard index (0 on the single-heap kernel).

        Lets accounting-only observers (the trace store) name per-shard
        artifacts without probing for the worker subclass.
        """
        return 0

    @property
    def num_shards(self) -> int:
        """Total shard count this run was configured for (>= 1)."""
        return max(1, self.config.shards)

    def add_barrier_hook(self, hook) -> bool:
        """Register an accounting-only window-barrier observer.

        Returns False on the single-heap kernel — there are no window
        barriers, so callers (the trace store) fall back to record-count
        flushing plus an end-of-run flush.  The sharded worker scenario
        overrides this to append to the runtime's barrier hooks and
        returns True.
        """
        return False

    def owns(self, address: int) -> bool:
        """True when this kernel accounts for ``address``'s activity."""
        return True

    def owns_control(self) -> bool:
        """True when this kernel accounts run-global observables."""
        return True

    def materializes(self, address: int) -> bool:
        """True when this kernel must build per-peer state for ``address``.

        Constant True except on directory-mode shard workers, where only
        owned peers materialize (remote peers are directory-served: their
        liveness is synced by delta records, their handlers live on the
        owning shard).
        """
        return True

    def materialize_peer(self, address: int) -> Optional[SimNode]:
        """Ownership-gated :class:`SimNode` construction.

        Returns the node when this kernel materializes ``address``; remote
        peers are registered as directory-served endpoints and ``None`` is
        returned.  The one sanctioned way for protocols to build their peer
        fleets — it feeds the ``peers_materialized`` construction counter.
        """
        if self.materializes(address):
            self.peers_materialized += 1
            return SimNode(address, self.network)
        self.network.register_remote(address)
        return None

    def register_peer(self, address: int, handler) -> bool:
        """Ownership-gated raw handler registration (workloads that do not
        need typed :class:`SimNode` dispatch).  Returns True when the peer
        materialized locally."""
        if self.materializes(address):
            self.network.register(address, handler)
            self.peers_materialized += 1
            return True
        self.network.register_remote(address)
        return False

    def construction_cost(self) -> dict:
        """Numeric construction-cost counters (the O(N/K) witness).

        ``peers_materialized`` counts per-peer states this kernel built;
        ``overlay_entries_built`` counts routing-table entries its overlay
        instance computed (a directory-served view applies edits instead,
        so the counter stays near zero).
        """
        return {
            "peers_materialized": self.peers_materialized,
            "overlay_entries_built": self.overlay.entries_built,
        }

    # ------------------------------------------------------------------

    def _on_peer_leave(self, address: int) -> None:
        self.overlay.leave(address)
        if self.owns(address):
            self.stats.increment("churn_leaves")

    def _on_peer_join(self, address: int) -> None:
        self.overlay.join(address)
        if self.owns(address):
            self.stats.increment("churn_joins")

    #: maintenance probes are tiny control frames — no codec helps them
    MAINTENANCE_MSG_TYPE = "overlay.maintenance"

    #: bytes of one maintenance probe (ping/pong + a few table entries)
    MAINTENANCE_PROBE_BYTES = 48
    #: probes each node sends per stabilization round
    MAINTENANCE_PROBES_PER_NODE = 4

    def _periodic_stabilize(self) -> None:
        stabilize = getattr(self.overlay, "stabilize", None)
        if callable(stabilize):
            stabilize()
        repair = getattr(self.overlay, "repair", None)
        if callable(repair):
            repair()
        if self.owns_control():
            self.stats.increment("stabilize_rounds")
        self._charge_maintenance()
        self.simulator.schedule(
            self.config.stabilize_interval, self._periodic_stabilize, "stabilize"
        )

    def _charge_maintenance(self) -> None:
        """Charge the probe traffic a stabilization round costs.

        Every live node probes a handful of neighbours (successor pings,
        bucket refreshes).  The table repair itself is computed synchronously
        (DESIGN.md §5); this keeps its *cost* visible in every experiment
        that runs under churn.  Probes are modelled-only traffic, charged
        through the transport so the accounting matches real messages.
        """
        for address in self.overlay.members():
            if not self.owns(address):
                continue
            neighbors = self.overlay.neighbors(address)
            for neighbor in neighbors[: self.MAINTENANCE_PROBES_PER_NODE]:
                self.transport.charge(
                    src=address,
                    dst=neighbor,
                    msg_type=self.MAINTENANCE_MSG_TYPE,
                    size_bytes=self.MAINTENANCE_PROBE_BYTES,
                )

    # ------------------------------------------------------------------

    def start_churn(self) -> None:
        """Begin churn cycles and periodic overlay maintenance."""
        self.churn_driver.start(self.peer_addresses)
        if self.directory_mode:
            # Maintenance is directory-scheduled: the control plane emits
            # per-window delta records for stabilize rounds too.
            return
        if self.churn_model.churns and not self._stabilize_scheduled:
            self._stabilize_scheduled = True
            self.simulator.schedule(
                self.config.stabilize_interval, self._periodic_stabilize, "stabilize"
            )

    # -- directory control-plane application (shard workers) -------------
    #
    # Under control_plane="directory" the worker's churn/maintenance state
    # is *served*: the directory publishes (time, kind, payload) records one
    # window ahead, the shard kernel schedules them at their exact virtual
    # times, and this method applies them — mirroring, observable for
    # observable, what ChurnDriver._leave/_rejoin and _periodic_stabilize
    # do on the replicated path above.

    def _apply_control_record(self, record) -> None:
        time, kind, payload = record
        if kind == "leave":
            if self.churn_driver.suppresses(time):
                return
            self.network.set_down(payload, True)
            self.churn_driver.leave_count += 1
            self._on_peer_leave(payload)
        elif kind == "join":
            if self.churn_driver.suppresses(time):
                return
            self.network.set_down(payload, False)
            self.churn_driver.join_count += 1
            self._on_peer_join(payload)
        elif kind == "maintenance":
            self.overlay.apply_state_edits(payload)
            if self.owns_control():
                self.stats.increment("stabilize_rounds")
            self._charge_maintenance()
        else:  # pragma: no cover - wire-format drift guard
            raise ConfigurationError(f"unknown control record kind {kind!r}")

    def live_peers(self) -> List[int]:
        """Peers currently in the overlay (i.e. not churned out)."""
        members = set(self.overlay.members())
        return [a for a in self.peer_addresses if a in members]

    def run(self, duration: float) -> None:
        """Advance virtual time by ``duration`` seconds."""
        self.simulator.run(until=self.simulator.now + duration)


register_traffic_class(Scenario.MAINTENANCE_MSG_TYPE, "control")
