"""Message tracing (P2PDMT "Log activities").

A :class:`MessageTrace` taps the physical network and records every sent
message with its virtual timestamp, endpoints, type, and size.  Traces can
be filtered, summarized into timelines, and exported as JSONL for external
analysis — the toolkit's equivalent of OverSim's packet logs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.sim.messages import Message
from repro.sim.network import PhysicalNetwork


@dataclass(frozen=True)
class TraceRecord:
    """One traced message send."""

    time: float
    src: int
    dst: int
    msg_type: str
    size_bytes: int
    hops: int

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "src": self.src,
            "dst": self.dst,
            "type": self.msg_type,
            "bytes": self.size_bytes,
            "hops": self.hops,
        }


class MessageTrace:
    """Records every message sent through a :class:`PhysicalNetwork`.

    Attach with :meth:`attach`; the trace registers as a send listener so it
    sees unicast and batched sends alike.  Recording happens for *sent*
    messages whether or not they are later dropped — the same convention the
    stats collector uses.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._records: List[TraceRecord] = []
        self._capacity = capacity
        self._network: Optional[PhysicalNetwork] = None

    # -- lifecycle -----------------------------------------------------------

    def attach(self, network: PhysicalNetwork) -> "MessageTrace":
        if self._network is not None:
            raise RuntimeError("trace is already attached")
        self._network = network
        network.add_send_listener(self._on_send)
        return self

    def detach(self) -> None:
        if self._network is not None:
            self._network.remove_send_listener(self._on_send)
        self._network = None

    def _on_send(self, message: Message) -> None:
        assert self._network is not None
        self._record(self._network.simulator.now, message)

    def __enter__(self) -> "MessageTrace":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # -- recording ---------------------------------------------------------------

    def _record(self, time: float, message: Message) -> None:
        if self._capacity is not None and len(self._records) >= self._capacity:
            self._records.pop(0)
        self._records.append(
            TraceRecord(
                time=time,
                src=message.src,
                dst=message.dst,
                msg_type=message.msg_type,
                size_bytes=message.size_bytes,
                hops=message.hops,
            )
        )

    # -- queries --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(
        self,
        msg_type: Optional[str] = None,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[TraceRecord]:
        """Filtered copy of the trace."""
        result = []
        for record in self._records:
            if msg_type is not None and record.msg_type != msg_type:
                continue
            if src is not None and record.src != src:
                continue
            if dst is not None and record.dst != dst:
                continue
            if not since <= record.time <= until:
                continue
            result.append(record)
        return result

    def timeline(self, bucket_seconds: float = 1.0) -> List[Tuple[float, int, int]]:
        """(bucket start, messages, bytes) triples over virtual time."""
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        buckets: Dict[int, Tuple[int, int]] = {}
        for record in self._records:
            key = int(record.time // bucket_seconds)
            count, size = buckets.get(key, (0, 0))
            buckets[key] = (count + 1, size + record.size_bytes)
        return [
            (key * bucket_seconds, count, size)
            for key, (count, size) in sorted(buckets.items())
        ]

    def conversation_matrix(self) -> Dict[Tuple[int, int], int]:
        """(src, dst) -> message count — who talks to whom."""
        matrix: Dict[Tuple[int, int], int] = {}
        for record in self._records:
            key = (record.src, record.dst)
            matrix[key] = matrix.get(key, 0) + 1
        return matrix

    # -- export ---------------------------------------------------------------------

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write the trace as JSONL; returns the record count."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(record.to_dict()) + "\n")
        return len(self._records)

    @classmethod
    def load_jsonl(cls, path: Union[str, Path]) -> "MessageTrace":
        trace = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                trace._records.append(
                    TraceRecord(
                        time=float(data["time"]),
                        src=int(data["src"]),
                        dst=int(data["dst"]),
                        msg_type=str(data["type"]),
                        size_bytes=int(data["bytes"]),
                        hops=int(data.get("hops", 1)),
                    )
                )
        return trace
