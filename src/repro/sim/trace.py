"""Message tracing (P2PDMT "Log activities").

A :class:`MessageTrace` taps the physical network and records every sent
message with its virtual timestamp, endpoints, type, and size.  Traces can
be filtered, summarized into timelines, and exported as JSONL for external
analysis — the toolkit's equivalent of OverSim's packet logs.

Tracing is *accounting-only*: the trace registers as a block listener
(:meth:`PhysicalNetwork.add_block_listener`), so attaching it never changes
which send path the transport takes, never perturbs the RNG draw order, and
leaves golden fingerprints byte-identical.  In particular a vectorized
:meth:`~repro.sim.network.PhysicalNetwork.broadcast_block` stays on the fast
path with a trace attached — the trace expands the SoA block itself.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.sim.messages import Message
from repro.sim.network import PhysicalNetwork, SendBlock


@dataclass(frozen=True)
class TraceRecord:
    """One traced message send.

    ``wire_bytes`` is the codec-modelled post-encoding size; it defaults to
    ``size_bytes`` (identity codec) when not given, mirroring
    :class:`~repro.sim.messages.Message`.
    """

    time: float
    src: int
    dst: int
    msg_type: str
    size_bytes: int
    hops: int
    wire_bytes: int = -1

    def __post_init__(self) -> None:
        if self.wire_bytes < 0:
            object.__setattr__(self, "wire_bytes", self.size_bytes)

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "src": self.src,
            "dst": self.dst,
            "type": self.msg_type,
            "bytes": self.size_bytes,
            "hops": self.hops,
            "wire": self.wire_bytes,
        }


class MessageTrace:
    """Records every message sent through a :class:`PhysicalNetwork`.

    Attach with :meth:`attach`; the trace registers as a *block* listener so
    it sees unicast, batched, and vectorized broadcast sends alike without
    forcing any of them off their fast path.  Recording happens for *sent*
    messages whether or not they are later dropped — the same convention the
    stats collector uses.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        # deque(maxlen=...) makes capacity eviction O(1); list.pop(0) made
        # a full capacity-bounded trace quadratic over a message storm.
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._capacity = capacity
        self._network: Optional[PhysicalNetwork] = None

    # -- lifecycle -----------------------------------------------------------

    def attach(self, network: PhysicalNetwork) -> "MessageTrace":
        if self._network is not None:
            raise RuntimeError("trace is already attached")
        self._network = network
        network.add_block_listener(self._on_block)
        return self

    def detach(self) -> None:
        if self._network is not None:
            self._network.remove_block_listener(self._on_block)
        self._network = None

    def _on_block(self, block: SendBlock) -> None:
        append = self._records.append
        time = block.time
        for src, dst, msg_type, size_bytes, wire_bytes, hops in block.rows():
            # int() strips numpy scalar types a broadcast's dst array may
            # carry, keeping records plain-Python (and JSON-serializable).
            append(
                TraceRecord(
                    time=time,
                    src=int(src),
                    dst=int(dst),
                    msg_type=msg_type,
                    size_bytes=int(size_bytes),
                    hops=int(hops),
                    wire_bytes=int(wire_bytes),
                )
            )

    def __enter__(self) -> "MessageTrace":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # -- recording ---------------------------------------------------------------

    def _record(self, time: float, message: Message) -> None:
        """Record one materialized message (direct use; listeners go through
        :meth:`_on_block`)."""
        self._records.append(
            TraceRecord(
                time=time,
                src=message.src,
                dst=message.dst,
                msg_type=message.msg_type,
                size_bytes=message.size_bytes,
                hops=message.hops,
                wire_bytes=message.wire_bytes,
            )
        )

    # -- queries --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(
        self,
        msg_type: Optional[str] = None,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[TraceRecord]:
        """Filtered copy of the trace."""
        result = []
        for record in self._records:
            if msg_type is not None and record.msg_type != msg_type:
                continue
            if src is not None and record.src != src:
                continue
            if dst is not None and record.dst != dst:
                continue
            if not since <= record.time <= until:
                continue
            result.append(record)
        return result

    def timeline(self, bucket_seconds: float = 1.0) -> List[Tuple[float, int, int]]:
        """(bucket start, messages, bytes) triples over virtual time."""
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        buckets: Dict[int, Tuple[int, int]] = {}
        for record in self._records:
            key = int(record.time // bucket_seconds)
            count, size = buckets.get(key, (0, 0))
            buckets[key] = (count + 1, size + record.size_bytes)
        return [
            (key * bucket_seconds, count, size)
            for key, (count, size) in sorted(buckets.items())
        ]

    def conversation_matrix(self) -> Dict[Tuple[int, int], int]:
        """(src, dst) -> message count — who talks to whom."""
        matrix: Dict[Tuple[int, int], int] = {}
        for record in self._records:
            key = (record.src, record.dst)
            matrix[key] = matrix.get(key, 0) + 1
        return matrix

    # -- export ---------------------------------------------------------------------

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write the trace as JSONL; returns the record count."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(record.to_dict()) + "\n")
        return len(self._records)

    @classmethod
    def load_jsonl(cls, path: Union[str, Path]) -> "MessageTrace":
        trace = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                trace._records.append(
                    TraceRecord(
                        time=float(data["time"]),
                        src=int(data["src"]),
                        dst=int(data["dst"]),
                        msg_type=str(data["type"]),
                        size_bytes=int(data["bytes"]),
                        hops=int(data.get("hops", 1)),
                        # Pre-wire traces default to identity, like ``hops``.
                        wire_bytes=int(data.get("wire", data["bytes"])),
                    )
                )
        return trace
