"""Churn models: peer session and downtime processes.

P2PDMT "Simulate node failures / churn model(s)".  A churn model draws
session (online) and inter-session (offline) durations; the
:class:`ChurnDriver` turns those draws into scheduled leave/join events
against a :class:`~repro.sim.network.PhysicalNetwork`.

The distributions follow the P2P measurement literature: exponential is the
classic analytical choice, Weibull (shape < 1) matches observed heavy-tailed
session lengths, and Pareto models extremely skewed lifetimes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.network import PhysicalNetwork


class ChurnModel(ABC):
    """Draws session (online) and downtime (offline) durations."""

    @abstractmethod
    def session_time(self, rng: np.random.Generator) -> float:
        """How long a peer stays online."""

    @abstractmethod
    def downtime(self, rng: np.random.Generator) -> float:
        """How long a peer stays offline before rejoining."""

    @property
    def churns(self) -> bool:
        """Whether this model ever takes peers down."""
        return True


class NoChurn(ChurnModel):
    """Peers never leave — the static-network control condition."""

    def session_time(self, rng: np.random.Generator) -> float:
        return float("inf")

    def downtime(self, rng: np.random.Generator) -> float:
        return 0.0

    @property
    def churns(self) -> bool:
        return False


class ExponentialChurn(ChurnModel):
    """Memoryless sessions/downtimes with given means (seconds)."""

    def __init__(self, mean_session: float, mean_downtime: float) -> None:
        if mean_session <= 0 or mean_downtime < 0:
            raise ConfigurationError("churn means must be positive")
        self.mean_session = mean_session
        self.mean_downtime = mean_downtime

    def session_time(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_session))

    def downtime(self, rng: np.random.Generator) -> float:
        if self.mean_downtime == 0:
            return 0.0
        return float(rng.exponential(self.mean_downtime))


class WeibullChurn(ChurnModel):
    """Heavy-tailed sessions (shape < 1 reproduces measured P2P traces)."""

    def __init__(
        self, scale_session: float, shape: float = 0.6, mean_downtime: float = 60.0
    ) -> None:
        if scale_session <= 0 or shape <= 0 or mean_downtime < 0:
            raise ConfigurationError("Weibull parameters must be positive")
        self.scale_session = scale_session
        self.shape = shape
        self.mean_downtime = mean_downtime

    def session_time(self, rng: np.random.Generator) -> float:
        return float(self.scale_session * rng.weibull(self.shape))

    def downtime(self, rng: np.random.Generator) -> float:
        if self.mean_downtime == 0:
            return 0.0
        return float(rng.exponential(self.mean_downtime))


class ParetoChurn(ChurnModel):
    """Pareto session lengths: a few peers are nearly always on."""

    def __init__(
        self,
        minimum_session: float = 30.0,
        alpha: float = 1.5,
        mean_downtime: float = 60.0,
    ) -> None:
        if minimum_session <= 0 or alpha <= 0 or mean_downtime < 0:
            raise ConfigurationError("Pareto parameters must be positive")
        self.minimum_session = minimum_session
        self.alpha = alpha
        self.mean_downtime = mean_downtime

    def session_time(self, rng: np.random.Generator) -> float:
        return float(self.minimum_session * (1.0 + rng.pareto(self.alpha)))

    def downtime(self, rng: np.random.Generator) -> float:
        if self.mean_downtime == 0:
            return 0.0
        return float(rng.exponential(self.mean_downtime))


class DirectoryChurnClient:
    """Worker-side stand-in for :class:`ChurnDriver` under the directory
    control plane (:mod:`repro.sim.shard`).

    Directory-mode shard workers do not replay churn timelines: the
    directory generates every leave/rejoin once and serves them as
    per-window delta records, which the worker applies at their exact
    virtual times.  This client keeps the driver's *interface* alive for
    SPMD workload code — ``start``/``stop`` forward control requests
    through the next window barrier, the leave/join counters advance as
    served records are applied, and :meth:`suppresses` reproduces the
    driver's ``_active`` check locally (a record generated before the
    directory learned of ``stop()`` must no-op, exactly as the queued
    driver event would have).
    """

    def __init__(
        self,
        simulator: Simulator,
        model: ChurnModel,
        request: Callable[[str, float], None],
    ) -> None:
        self.simulator = simulator
        self.model = model
        self._request = request
        self.leave_count = 0
        self.join_count = 0
        self.stopped_at: Optional[float] = None

    def start(self, node_ids: List[int]) -> None:
        """Ask the directory to begin churn cycles (no-op without churn)."""
        if not self.model.churns:
            return
        self._request("start_churn", self.simulator.now)

    def stop(self) -> None:
        """Stop churn from now on (already-served records still no-op)."""
        self.stopped_at = self.simulator.now
        self._request("stop_churn", self.simulator.now)

    def suppresses(self, time: float) -> bool:
        """True when a served churn record at ``time`` must be skipped."""
        return self.stopped_at is not None and time > self.stopped_at


class ChurnDriver:
    """Schedules leave/rejoin cycles for a set of peers.

    Callbacks (``on_leave`` / ``on_join``) let the overlay repair its routing
    state; the driver itself only toggles liveness on the physical network.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: PhysicalNetwork,
        model: ChurnModel,
        on_leave: Optional[Callable[[int], None]] = None,
        on_join: Optional[Callable[[int], None]] = None,
        rng_for: Optional[Callable[[int], "np.random.Generator"]] = None,
    ) -> None:
        self.simulator = simulator
        self.network = network
        self.model = model
        self.on_leave = on_leave
        self.on_join = on_join
        #: per-peer stream provider (decomposed-randomness mode): node ``n``'s
        #: session/downtime draws come from ``rng_for(n)`` instead of the
        #: simulator's single stream.  Makes each peer's churn timeline an
        #: autonomous deterministic process — replicable in every shard of a
        #: sharded run, keeping liveness/overlay replicas in sync without
        #: any cross-shard traffic.
        self.rng_for = rng_for
        self.leave_count = 0
        self.join_count = 0
        self._active: Dict[int, bool] = {}

    def _rng(self, node_id: int) -> "np.random.Generator":
        if self.rng_for is not None:
            return self.rng_for(node_id)
        return self.simulator.rng

    def start(self, node_ids: List[int]) -> None:
        """Begin churn cycles for each node (no-op under :class:`NoChurn`)."""
        if not self.model.churns:
            return
        for node_id in node_ids:
            self._active[node_id] = True
            self._schedule_leave(node_id)

    def stop(self) -> None:
        """Stop scheduling further churn (already-queued events still fire)."""
        for node_id in self._active:
            self._active[node_id] = False

    def _schedule_leave(self, node_id: int) -> None:
        session = self.model.session_time(self._rng(node_id))
        if session == float("inf"):
            return
        self.simulator.schedule(
            session, lambda: self._leave(node_id), label=f"churn-leave:{node_id}"
        )

    def _leave(self, node_id: int) -> None:
        if not self._active.get(node_id):
            return
        if self.network.is_down(node_id):
            return
        self.network.set_down(node_id, True)
        self.leave_count += 1
        if self.on_leave is not None:
            self.on_leave(node_id)
        down = self.model.downtime(self._rng(node_id))
        self.simulator.schedule(
            down, lambda: self._rejoin(node_id), label=f"churn-join:{node_id}"
        )

    def _rejoin(self, node_id: int) -> None:
        if not self._active.get(node_id):
            return
        self.network.set_down(node_id, False)
        self.join_count += 1
        if self.on_join is not None:
            self.on_join(node_id)
        self._schedule_leave(node_id)
