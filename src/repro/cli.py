"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands:

- ``corpus``   — generate a synthetic Delicious-like corpus to JSONL;
- ``run``      — train + evaluate one algorithm on a corpus (generated or
  loaded) and print the evaluation report;
- ``compare``  — run several algorithms on the same corpus and print the
  comparison table;
- ``suggest``  — train, then print the Suggestion Cloud for the first few
  held-out documents (the Fig. 3 interaction, in a terminal);
- ``overlay``  — build an overlay at a given size and print routing and
  connectivity statistics;
- ``analyze``  — run canned window-function analytics (or raw SQL) against
  a trace store written by :class:`repro.sim.tracestore.TraceStore`.

All commands accept ``--seed`` and are fully reproducible.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.bench.reporting import format_table
from repro.core.tagger import ALGORITHMS, P2PDocTaggerSystem, SystemConfig
from repro.data.delicious import DeliciousGenerator
from repro.data.loaders import load_corpus, save_corpus


def _corpus_from_args(args: argparse.Namespace):
    if getattr(args, "load", None):
        return load_corpus(args.load)
    return DeliciousGenerator(
        num_users=args.users,
        seed=args.seed,
        num_tags=args.tags,
        docs_per_user_range=(args.docs, args.docs),
    ).generate()


def _add_corpus_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=12, help="number of users")
    parser.add_argument("--docs", type=int, default=40, help="documents per user")
    parser.add_argument("--tags", type=int, default=10, help="tag universe size")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--load", type=str, default=None, help="load a JSONL corpus instead"
    )


def cmd_corpus(args: argparse.Namespace) -> int:
    corpus = DeliciousGenerator(
        num_users=args.users,
        seed=args.seed,
        num_tags=args.tags,
        docs_per_user_range=(args.docs, args.docs),
    ).generate()
    count = save_corpus(corpus, args.output)
    print(f"wrote {count} documents to {args.output}")
    print(corpus.summary())
    return 0


def _build_system(args: argparse.Namespace, algorithm: str) -> P2PDocTaggerSystem:
    corpus = _corpus_from_args(args)
    return P2PDocTaggerSystem(
        corpus,
        SystemConfig(
            algorithm=algorithm,
            overlay=args.overlay,
            churn=args.churn,
            codec=args.codec,
            shards=args.shards,
            executor=args.executor,
            control_plane=args.control_plane,
            tcp_hosts=args.hosts,
            wal=args.wal,
            resume=args.resume,
            faults=args.faults,
            train_fraction=args.train_fraction,
            threshold=args.threshold,
            seed=args.seed,
        ),
    )


def _overlay_choices() -> tuple:
    from repro.overlay import overlay_names

    return overlay_names()


def _codec_choices() -> tuple:
    from repro.sim.codec import codec_names

    return codec_names()


def _add_system_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--overlay", choices=_overlay_choices(), default="chord",
    )
    parser.add_argument(
        "--churn", choices=("none", "exponential", "weibull", "pareto"),
        default="none",
    )
    parser.add_argument(
        "--codec", choices=_codec_choices(), default="identity",
        help="wire-format codec table for traffic accounting",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="event-kernel shards: K >= 1 replays training through the "
        "K-shard kernel and verifies it is byte-identical to the local run",
    )
    parser.add_argument(
        "--executor", choices=("serial", "mp", "tcp"), default="serial",
        help="sharded executor: lockstep serial reference, one worker "
        "process per shard (mp), or socket-connected workers spawned per "
        "--hosts (tcp)",
    )
    parser.add_argument(
        "--hosts", default=None, metavar="SPEC",
        help="tcp executor worker placement: comma-separated entries, one "
        "per shard (or one for all) — 'local' spawns `repro worker` here, "
        "'wait' expects an externally launched worker to connect, "
        "'ssh:HOST' spawns over ssh (requires --executor tcp)",
    )
    parser.add_argument(
        "--control-plane", choices=("replicated", "directory"),
        default="replicated", dest="control_plane",
        help="sharded control plane: replicate churn/maintenance in every "
        "worker, or serve overlay snapshots + per-window deltas from one "
        "directory (O(N/K) per-worker cost; requires --shards >= 1)",
    )
    parser.add_argument(
        "--wal", default=None, metavar="PATH",
        help="checkpoint the sharded run's window stream to this "
        "write-ahead log; on --executor tcp the log doubles as the replay "
        "source for --faults in-run worker recovery "
        "(requires --shards >= 1)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from a write-ahead log via verified prefix replay; "
        "combine with --wal NEW to re-log to a fresh file "
        "(requires --shards >= 1)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="seeded deterministic fault injection for the tcp fleet: "
        "comma-separated 'kind[*count][@window[:shard]]' entries plus "
        "'seed=N', 'horizon=N', 'stall_s=F' knobs; kinds: crash, stall, "
        "halfopen, corrupt, truncate, tear. The schedule draws from its "
        "own RNG stream so the final digest is byte-identical to the "
        "fault-free run. With --wal PATH the coordinator self-heals "
        "(respawns crashed workers and replays them from the log, bounded "
        "by REPRO_TCP_MAX_RESPAWNS); without --wal an injected crash "
        "degrades gracefully to a loud abort naming the missing "
        "checkpoint (requires --executor tcp, --shards >= 1)",
    )
    parser.add_argument("--train-fraction", type=float, default=0.2)
    parser.add_argument("--threshold", type=float, default=0.5)
    parser.add_argument("--max-eval", type=int, default=80)


def cmd_run(args: argparse.Namespace) -> int:
    system = _build_system(args, args.algorithm)
    system.train()
    if system.sharded_run is not None:
        run = system.sharded_run
        line = (
            f"[shard] K={run.shards} executor={run.executor} "
            f"plane={run.control_plane} windows={run.windows} "
            f"lookahead={run.lookahead:.4f}s "
            f"digest={run.digest()[:16]}… == local kernel (verified)"
        )
        if run.control_plane == "directory":
            line += (
                f" control_records={run.control_records} "
                f"control_bytes={run.control_bytes}"
            )
        faults = getattr(run.stats, "faults", None)
        if faults:
            line += (
                f" respawns={faults.get('respawns', 0)} "
                f"replayed_windows={faults.get('replayed_windows', 0)}"
            )
        print(line)
    if args.tune_thresholds:
        system.tune_thresholds()
    report = system.evaluate(max_documents=args.max_eval)
    print(report.summary())
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-execute a window range from a simulation WAL in isolation."""
    from repro.sim.wal import WalReader, replay_windows

    reader = WalReader(args.path)
    status = "committed" if reader.commit is not None else (
        "torn tail discarded" if reader.truncated else "open"
    )
    print(
        f"[wal] {args.path}: shards={reader.num_shards} "
        f"lookahead={reader.lookahead:.4f}s windows={len(reader.windows)} "
        f"({status})"
    )
    stop = args.to_window
    total_deliveries = 0
    for window in replay_windows(args.path, start=args.from_window, stop=stop):
        total_deliveries += len(window.deliveries)
        print(
            f"window {window.barrier}: start={window.window_start:.4f} "
            f"deliveries={len(window.deliveries)} "
            f"control={len(window.control)} "
            f"executed_total={window.total_executed}"
        )
        if args.records:
            for (time, src, dst, msg_type, size, wire, hops) in (
                window.deliveries
            ):
                print(
                    f"  t={time:.6f} {msg_type} {src}->{dst} "
                    f"{size}B/{wire}B hops={hops}"
                )
            for record in window.control:
                print(f"  control t={record[0]:.6f} {record[1]}")
    print(f"[wal] replayed {total_deliveries} cross-shard deliveries")
    if reader.commit is not None:
        print(
            f"[wal] commit: digest={reader.commit['digest'][:16]}… "
            f"now={reader.commit['now']:.6f} "
            f"windows={reader.commit['windows']}"
        )
    return 0


_ANALYZE_REPORTS = ("summary", "traffic", "peers", "routes", "churn", "codec")

_ANALYZE_TITLES = {
    "summary": "Store summary",
    "traffic": "Traffic by message type",
    "peers": "Per-peer sent-traffic percentiles",
    "routes": "Route length distribution over time",
    "churn": "Churn-phase breakdown by window",
    "codec": "Raw vs wire bytes by traffic class",
}


def cmd_analyze(args: argparse.Namespace) -> int:
    """Query a trace store: canned analytics or passthrough SQL."""
    from pathlib import Path

    from repro.sim.tracestore import TraceStore

    if not Path(args.path).exists():
        # Opening would create an empty store — catch the typo instead.
        print(f"error: no trace store at {args.path}", file=sys.stderr)
        return 2
    with TraceStore(args.path, backend=args.backend) as store:
        if args.sql:
            headers, rows = store.sql(args.sql)
            print(format_table("SQL", list(headers), [list(r) for r in rows]))
            return 0
        reports = args.report or ["summary", "traffic"]
        for name in reports:
            if name == "routes":
                headers, rows = store.report_routes(args.bucket)
            elif name == "summary":
                headers, rows = store.summary()
            else:
                headers, rows = getattr(store, f"report_{name}")()
            print(
                format_table(
                    _ANALYZE_TITLES[name], list(headers),
                    [list(r) for r in rows],
                )
            )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    algorithms = args.algorithms or list(ALGORITHMS)
    rows = []
    for algorithm in algorithms:
        system = _build_system(args, algorithm)
        system.train()
        report = system.evaluate(max_documents=args.max_eval)
        rows.append(
            [
                algorithm,
                report.metrics.micro_f1,
                report.metrics.macro_f1,
                report.total_messages,
                report.total_bytes,
            ]
        )
    print(
        format_table(
            "Algorithm comparison",
            ["algorithm", "microF1", "macroF1", "messages", "bytes"],
            rows,
        )
    )
    return 0


def cmd_suggest(args: argparse.Namespace) -> int:
    system = _build_system(args, args.algorithm)
    system.train()
    for document in system.test_corpus.documents[: args.count]:
        peer = system.peer_of(document)
        suggestions = peer.suggest_tags(
            document, confidence_threshold=args.confidence
        )
        rendered = "  ".join(s.render() for s in suggestions)
        print(f"doc {document.doc_id} (true: {', '.join(sorted(document.tags))})")
        print(f"  {rendered}")
    return 0


def cmd_overlay(args: argparse.Namespace) -> int:
    import statistics

    from repro.overlay import make_overlay
    from repro.overlay.idspace import key_id_for
    from repro.sim.visualize import ascii_summary

    overlay = make_overlay(args.type, seed=args.seed, degree=4)
    for address in range(args.size):
        overlay.join(address)
    stabilize = getattr(overlay, "stabilize", None)
    if callable(stabilize):
        stabilize()
    print(ascii_summary(overlay))
    results = [
        overlay.route(i % args.size, key_id_for(f"key{i}")) for i in range(100)
    ]
    hops = [r.hops for r in results]
    success = sum(r.success for r in results)
    print(
        f"lookups: mean hops {statistics.mean(hops):.2f}, "
        f"max {max(hops)}, success {success}/100"
    )
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """One tcp shard worker process (spawned by the coordinator for
    'local' hosts entries, or launched by hand / a remote init for
    'wait' entries)."""
    from repro.sim.tcpexec import parse_address, worker_main

    host, port = parse_address(args.connect)
    return worker_main(
        host, port, shard=args.shard, backoff_seed=args.backoff_seed
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="P2PDocTagger command-line interface"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_corpus = subparsers.add_parser(
        "corpus", help="generate a synthetic corpus to JSONL"
    )
    p_corpus.add_argument("output", help="output JSONL path")
    p_corpus.add_argument("--users", type=int, default=12)
    p_corpus.add_argument("--docs", type=int, default=40)
    p_corpus.add_argument("--tags", type=int, default=10)
    p_corpus.add_argument("--seed", type=int, default=0)
    p_corpus.set_defaults(func=cmd_corpus)

    p_run = subparsers.add_parser("run", help="train + evaluate one algorithm")
    p_run.add_argument(
        "--algorithm", choices=ALGORITHMS, default="pace"
    )
    p_run.add_argument(
        "--tune-thresholds", action="store_true",
        help="use per-tag F1-optimal thresholds",
    )
    _add_corpus_options(p_run)
    _add_system_options(p_run)
    p_run.set_defaults(func=cmd_run)

    p_compare = subparsers.add_parser(
        "compare", help="compare algorithms on one corpus"
    )
    p_compare.add_argument(
        "--algorithms", nargs="*", choices=ALGORITHMS, default=None
    )
    _add_corpus_options(p_compare)
    _add_system_options(p_compare)
    p_compare.set_defaults(func=cmd_compare)

    p_suggest = subparsers.add_parser(
        "suggest", help="print Suggestion Clouds for held-out documents"
    )
    p_suggest.add_argument(
        "--algorithm", choices=ALGORITHMS, default="cempar"
    )
    p_suggest.add_argument("--count", type=int, default=3)
    p_suggest.add_argument("--confidence", type=float, default=0.3)
    _add_corpus_options(p_suggest)
    _add_system_options(p_suggest)
    p_suggest.set_defaults(func=cmd_suggest)

    p_replay = subparsers.add_parser(
        "replay",
        help="re-execute a window range from a simulation WAL "
        "(time-travel debugging)",
    )
    p_replay.add_argument("path", help="write-ahead log file")
    p_replay.add_argument(
        "--from", type=int, default=0, dest="from_window",
        help="first window to replay (default 0)",
    )
    p_replay.add_argument(
        "--to", type=int, default=None, dest="to_window",
        help="stop before this window (default: end of log)",
    )
    p_replay.add_argument(
        "--records", action="store_true",
        help="print every re-executed delivery and control record",
    )
    p_replay.set_defaults(func=cmd_replay)

    p_worker = subparsers.add_parser(
        "worker",
        help="run one tcp shard worker: connect to a coordinator "
        "(--executor tcp) and execute the window protocol",
    )
    p_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator's listen address",
    )
    p_worker.add_argument(
        "--shard", type=int, default=-1,
        help="shard id to claim (-1 lets the coordinator assign one)",
    )
    p_worker.add_argument(
        "--backoff-seed", type=int, default=0, dest="backoff_seed",
        help="seed for the reconnect-backoff jitter (the coordinator "
        "passes the fault plane's seed through; 0 = unseeded default)",
    )
    p_worker.set_defaults(func=cmd_worker)

    p_analyze = subparsers.add_parser(
        "analyze",
        help="query a trace store: canned window-function analytics "
        "(traffic, peers, routes, churn, codec) or raw SQL",
    )
    p_analyze.add_argument("path", help="trace store file (sqlite/duckdb)")
    p_analyze.add_argument(
        "--report", action="append", choices=_ANALYZE_REPORTS, default=None,
        help="canned report to print (repeatable; default: summary, traffic)",
    )
    p_analyze.add_argument(
        "--bucket", type=float, default=1.0,
        help="virtual-time bucket width for --report routes",
    )
    p_analyze.add_argument(
        "--sql", default=None, metavar="QUERY",
        help="run one SQL query against the store instead of canned reports",
    )
    p_analyze.add_argument(
        "--backend", choices=("sqlite", "duckdb"), default=None,
        help="storage engine (default: sqlite, or REPRO_TRACE_BACKEND)",
    )
    p_analyze.set_defaults(func=cmd_analyze)

    p_overlay = subparsers.add_parser(
        "overlay", help="build an overlay and report routing statistics"
    )
    p_overlay.add_argument(
        "--type", choices=_overlay_choices(), default="chord",
    )
    p_overlay.add_argument("--size", type=int, default=64)
    p_overlay.add_argument("--seed", type=int, default=0)
    p_overlay.set_defaults(func=cmd_overlay)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
