"""P2PDocTagger — automated P2P collaborative document tagging.

Reproduction of:
    Ang, Gopalkrishnan, Ng, Hoi.  "P2PDocTagger: Content management through
    automated P2P collaborative tagging."  PVLDB 3(2):1601-1604, VLDB 2010.

The package contains the full system described by the paper, plus every
substrate it depends on:

- :mod:`repro.text` — document preprocessing (stop words, Porter stemming,
  sparse bag-of-words vectorization).
- :mod:`repro.ml` — learning substrate built from scratch (linear and kernel
  SVMs, k-means, LSH, Platt calibration, multi-label metrics).
- :mod:`repro.sim` — P2PDMT, the discrete-event P2P data-mining simulation
  toolkit (physical network, churn, data distribution, statistics).
- :mod:`repro.overlay` — structured (Chord, Kademlia) and unstructured
  overlays with deterministic super-peer election.
- :mod:`repro.data` — synthetic Delicious-like corpus generator.
- :mod:`repro.p2pclass` — the pluggable P2P classification approaches
  (CEMPaR and PACE) the paper deploys.
- :mod:`repro.baselines` — centralized / local-only / popularity comparators.
- :mod:`repro.core` — P2PDocTagger itself: the multi-label tagging pipeline,
  tag metadata store, library, tag cloud, suggestions, and refinement.

Quickstart::

    from repro import P2PDocTaggerSystem
    from repro.data import DeliciousGenerator

    corpus = DeliciousGenerator(num_users=16, seed=7).generate()
    system = P2PDocTaggerSystem.from_corpus(corpus, algorithm="pace", seed=7)
    system.train()
    report = system.evaluate()
    print(report.summary())
"""

from repro.errors import (
    ReproError,
    ConfigurationError,
    NotTrainedError,
    OverlayError,
    SimulationError,
)

__version__ = "1.0.0"

_CORE_EXPORTS = {"P2PDocTaggerPeer", "P2PDocTaggerSystem", "EvaluationReport"}


def __getattr__(name: str):
    """Lazily import the core facade so substrates import independently."""
    if name in _CORE_EXPORTS:
        from repro.core import tagger

        return getattr(tagger, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "P2PDocTaggerPeer",
    "P2PDocTaggerSystem",
    "EvaluationReport",
    "ReproError",
    "ConfigurationError",
    "NotTrainedError",
    "OverlayError",
    "SimulationError",
    "__version__",
]
