"""Environment-variable parsing with uniform semantics and loud failures.

Every ``REPRO_*`` knob goes through this module, for two reasons:

- **one boolean grammar** — the historical ``not in ("", "0")`` idiom was
  copy-pasted per call site and drifted (``REPRO_X=false`` used to mean
  *true*).  :func:`env_flag` parses unset/``""``/``0``/``false``/``no``/
  ``off`` as False and ``1``/``true``/``yes``/``on`` as True, everywhere;
  anything else is a hard error rather than a silent truthy surprise.
- **validated numerics** — a malformed or out-of-range value must name the
  variable and the accepted range at startup, not surface as a bare
  ``ValueError`` at fork time or a zero-capacity ring deep in the exchange.

Call sites pick the error class (``SimulationError`` for simulation-layer
knobs) so the exception lands in the hierarchy the caller's tests expect.
"""

from __future__ import annotations

import math
import os
from typing import Optional, Type

from repro.errors import ConfigurationError, ReproError

_TRUE = ("1", "true", "yes", "on")
_FALSE = ("", "0", "false", "no", "off")


def env_flag(name: str) -> bool:
    """Parse the boolean environment flag ``name``.

    Unset, empty, ``0``, ``false``, ``no``, ``off`` (any case) → False;
    ``1``, ``true``, ``yes``, ``on`` → True.  Anything else raises
    :class:`ConfigurationError` naming the variable — a typo'd flag value
    must never silently enable (or disable) a behaviour switch.
    """
    raw = os.environ.get(name)
    if raw is None:
        return False
    value = raw.strip().lower()
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    raise ConfigurationError(
        f"{name}={raw!r} is not a boolean flag; accepted values are "
        f"1/true/yes/on, 0/false/no/off, or unset"
    )


def env_int(
    name: str,
    default: int,
    minimum: Optional[int] = None,
    error: Type[ReproError] = ConfigurationError,
) -> int:
    """Parse integer env knob ``name``, raising ``error`` with the variable
    name and accepted range on malformed, empty, or out-of-range values."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    bound = f" >= {minimum}" if minimum is not None else ""
    try:
        value = int(raw.strip())
    except ValueError:
        raise error(
            f"{name}={raw!r} is not an integer; expected an integer{bound} "
            f"(default {default})"
        ) from None
    if minimum is not None and value < minimum:
        raise error(
            f"{name}={value} is out of range; expected an integer{bound} "
            f"(default {default})"
        )
    return value


def env_float(
    name: str,
    default: float,
    exclusive_minimum: Optional[float] = None,
    error: Type[ReproError] = ConfigurationError,
) -> float:
    """Parse finite-float env knob ``name``; same error contract as
    :func:`env_int`.  ``exclusive_minimum`` enforces a strict lower bound
    (e.g. timeouts must be ``> 0``)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    bound = (
        f" > {exclusive_minimum:g}" if exclusive_minimum is not None else ""
    )
    try:
        value = float(raw.strip())
    except ValueError:
        raise error(
            f"{name}={raw!r} is not a number; expected a finite number{bound} "
            f"(default {default:g})"
        ) from None
    if not math.isfinite(value) or (
        exclusive_minimum is not None and value <= exclusive_minimum
    ):
        raise error(
            f"{name}={raw!r} is out of range; expected a finite number{bound} "
            f"(default {default:g})"
        )
    return value
