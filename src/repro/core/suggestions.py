"""The Suggest-Tag operation and Suggestion Cloud (paper Fig. 3).

"Relevant tags will be shown in the 'Suggestion Cloud' panel, arranged in
alphabetical order, where tags with higher confidence will be in larger
font.  Low confidence tags can be filtered out (struck out, and placed last)
by adjusting the 'Confidence' slider."

:class:`SuggestionEngine` wraps a trained classifier and renders exactly
that: alphabetical suggestions with font buckets by confidence, and a
threshold that strikes low-confidence tags out rather than hiding them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.ml.sparse import SparseVector
from repro.p2pclass.base import P2PTagClassifier


@dataclass
class Suggestion:
    """One entry of the Suggestion Cloud."""

    tag: str
    confidence: float
    font_size: int  # 1..5 by confidence
    struck_out: bool  # below the confidence slider

    def render(self) -> str:
        text = self.tag.upper() if self.font_size >= 4 else self.tag
        return f"~~{text}~~" if self.struck_out else text


class SuggestionEngine:
    """Produces Suggestion Cloud content from a trained classifier."""

    def __init__(
        self, classifier: P2PTagClassifier, max_suggestions: int = 10
    ) -> None:
        if max_suggestions < 1:
            raise ConfigurationError("max_suggestions must be >= 1")
        self.classifier = classifier
        self.max_suggestions = max_suggestions

    def suggest(
        self,
        origin: int,
        vector: SparseVector,
        confidence_threshold: float = 0.3,
    ) -> List[Suggestion]:
        """Suggestion Cloud entries for one document.

        Ordering matches the GUI: kept tags alphabetically first, struck-out
        tags alphabetically after ("filtered out, struck out, and placed
        last").
        """
        if not 0.0 <= confidence_threshold <= 1.0:
            raise ConfigurationError("confidence_threshold must be in [0, 1]")
        ranked = self.classifier.rank_tags(origin, vector)[: self.max_suggestions]
        suggestions = [
            Suggestion(
                tag=tag,
                confidence=confidence,
                font_size=self._font_bucket(confidence),
                struck_out=confidence < confidence_threshold,
            )
            for tag, confidence in ranked
        ]
        kept = sorted(
            (s for s in suggestions if not s.struck_out), key=lambda s: s.tag
        )
        struck = sorted(
            (s for s in suggestions if s.struck_out), key=lambda s: s.tag
        )
        return kept + struck

    def top_tags(
        self, origin: int, vector: SparseVector, k: int
    ) -> List[str]:
        """The k highest-confidence tags (evaluation helper for E7)."""
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        ranked = self.classifier.rank_tags(origin, vector)
        return [tag for tag, _ in ranked[:k]]

    @staticmethod
    def _font_bucket(confidence: float) -> int:
        """Map confidence in [0, 1] to a 1..5 font bucket."""
        clamped = min(1.0, max(0.0, confidence))
        return 1 + min(4, int(clamped * 5))

    @staticmethod
    def render_cloud(suggestions: Sequence[Suggestion]) -> str:
        """One-line terminal rendering of the Suggestion Cloud."""
        return "  ".join(s.render() for s in suggestions)
