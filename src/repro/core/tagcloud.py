"""The Tag Cloud component (paper Figs. 3-4).

"tags that co-occur in documents are connected by edges.  This provides
users with information regarding the tag relationships and captures higher
level concepts ... we see two clusters of highly interconnected tags bridged
by the word 'navigation'."

This module builds the tag co-occurrence graph, sizes tags by frequency
(font buckets), finds the clusters (greedy modularity communities), and
identifies *bridge tags* — tags whose removal disconnects clusters, found by
betweenness centrality across communities.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import networkx as nx


@dataclass
class CloudEntry:
    """One rendered tag in the cloud."""

    tag: str
    frequency: int
    font_size: int  # bucket 1 (smallest) .. 5 (largest)
    community: int


class TagCloud:
    """Co-occurrence structure over a collection of tag sets."""

    def __init__(self, tag_sets: Iterable[Iterable[str]]) -> None:
        self._frequencies: Dict[str, int] = {}
        self._cooccurrence: Dict[Tuple[str, str], int] = {}
        for tags in tag_sets:
            tag_list = sorted(set(tags))
            for tag in tag_list:
                self._frequencies[tag] = self._frequencies.get(tag, 0) + 1
            for a, b in combinations(tag_list, 2):
                self._cooccurrence[(a, b)] = self._cooccurrence.get((a, b), 0) + 1
        self._graph = self._build_graph()
        self._communities = self._detect_communities()

    # ------------------------------------------------------------------

    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(self._frequencies)
        for (a, b), weight in self._cooccurrence.items():
            graph.add_edge(a, b, weight=weight)
        return graph

    def _detect_communities(self) -> List[Set[str]]:
        if self._graph.number_of_nodes() == 0:
            return []
        if self._graph.number_of_edges() == 0:
            return [{tag} for tag in self._graph.nodes]
        communities = nx.community.greedy_modularity_communities(
            self._graph, weight="weight"
        )
        return [set(c) for c in communities]

    # -- cloud rendering -----------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def frequencies(self) -> Dict[str, int]:
        return dict(self._frequencies)

    def cooccurrence(self, a: str, b: str) -> int:
        key = (min(a, b), max(a, b))
        return self._cooccurrence.get(key, 0)

    def font_size(self, tag: str, buckets: int = 5) -> int:
        """Bucketized font size: 1 (rare) .. ``buckets`` (most frequent)."""
        if tag not in self._frequencies:
            return 0
        counts = sorted(self._frequencies.values())
        rank = counts.index(self._frequencies[tag])
        bucket = 1 + (rank * buckets) // max(1, len(counts))
        return min(buckets, bucket)

    def community_of(self, tag: str) -> int:
        for index, community in enumerate(self._communities):
            if tag in community:
                return index
        return -1

    def entries(self) -> List[CloudEntry]:
        """All tags with frequency, font bucket, and community, sorted by name."""
        return [
            CloudEntry(
                tag=tag,
                frequency=self._frequencies[tag],
                font_size=self.font_size(tag),
                community=self.community_of(tag),
            )
            for tag in sorted(self._frequencies)
        ]

    # -- structure analysis (the Fig. 4 observation) -----------------------

    def communities(self) -> List[Set[str]]:
        return [set(c) for c in self._communities]

    def bridge_tags(self, top: int = 3) -> List[str]:
        """Tags bridging communities, by cross-community betweenness.

        A bridge connects nodes from at least two different communities; the
        returned tags are those bridges with the highest betweenness
        centrality (the "navigation" of Fig. 4).
        """
        if self._graph.number_of_edges() == 0 or len(self._communities) < 2:
            return []
        centrality = nx.betweenness_centrality(self._graph, weight=None)
        community_of = {
            tag: idx
            for idx, community in enumerate(self._communities)
            for tag in community
        }
        bridges = []
        for tag in self._graph.nodes:
            neighbor_communities = {
                community_of[n] for n in self._graph.neighbors(tag)
            }
            neighbor_communities.discard(community_of[tag])
            if neighbor_communities:
                bridges.append((centrality.get(tag, 0.0), tag))
        bridges.sort(key=lambda pair: (-pair[0], pair[1]))
        return [tag for _, tag in bridges[:top]]

    def ascii_cloud(self, max_tags: int = 30) -> str:
        """Terminal rendering: font bucket shown as repetition + case."""
        parts = []
        ranked = sorted(
            self._frequencies.items(), key=lambda kv: (-kv[1], kv[0])
        )[:max_tags]
        for tag, _ in sorted(ranked):
            size = self.font_size(tag)
            rendered = tag.upper() if size >= 4 else tag
            parts.append(f"{rendered}({size})")
        return "  ".join(parts)
