"""P2PDocTagger — peers and the system facade (paper Fig. 1).

:class:`P2PDocTaggerSystem` wires every component together: the corpus is
split per user (20 % manually tagged, per §3), documents are preprocessed
into sparse vectors, a pluggable P2P classifier learns collaboratively over
the simulated network, and each peer exposes the user-facing operations —
manual tagging, AutoTag, Suggest Tag, refinement, Library and Tag Cloud.

This facade is what the examples and every benchmark drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.library import Library
from repro.core.metadata import TagMetadataStore, TagSource
from repro.core.multilabel import FixedThreshold, ThresholdPolicy
from repro.core.refinement import Refinement, RefinementLoop
from repro.core.suggestions import Suggestion, SuggestionEngine
from repro.core.tagcloud import TagCloud
from repro.data.corpus import Corpus, Document
from repro.data.splits import per_user_split
from repro.errors import ConfigurationError, NotTrainedError
from repro.ml.metrics import MultiLabelReport
from repro.ml.sparse import SparseVector
from repro.p2pclass.base import (
    P2PTagClassifier,
    PeerData,
    TaggedVector,
    corpus_to_peer_data,
)
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.text.vectorizer import PreprocessingPipeline

ALGORITHMS = ("pace", "cempar", "nbagg", "centralized", "local", "popularity")


@dataclass
class SystemConfig:
    """Top-level system configuration."""

    algorithm: str = "pace"
    overlay: str = "chord"
    churn: str = "none"
    codec: str = "identity"  # wire-format codec table (repro.sim.codec)
    #: event-kernel shards (repro.sim.shard): 0 = single-heap kernel; K >= 1
    #: additionally replays training through the K-shard kernel and verifies
    #: the merged observables are byte-identical to the local run.
    shards: int = 0
    #: sharded executor ("serial", "mp", or "tcp"), used when shards >= 1
    executor: str = "serial"
    #: tcp executor worker placement spec (see
    #: repro.sim.tcpexec.parse_hosts); None = spawn local workers
    tcp_hosts: Optional[str] = None
    #: sharded control plane ("replicated" or "directory"): "directory"
    #: serves overlay snapshots + per-window deltas from one authoritative
    #: control plane so per-worker cost is O(N/K)
    control_plane: str = "replicated"
    #: simulation WAL (repro.sim.wal): checkpoint the sharded training
    #: replay's window stream to this path / resume from this log via
    #: verified prefix replay; used when shards >= 1
    wal: Optional[str] = None
    resume: Optional[str] = None
    #: seeded fault-injection schedule (repro.sim.faults) for the tcp
    #: sharded replay's self-healing fleet; requires executor="tcp" and,
    #: for in-run recovery rather than a loud abort, a wal path
    faults: Optional[str] = None
    mean_session: float = 600.0
    mean_downtime: float = 60.0
    train_fraction: float = 0.2  # the paper's 20 % manual-tag protocol
    threshold: float = 0.5
    feature_dimension: int = 2 ** 18
    min_tag_support: int = 2
    seed: int = 0
    algorithm_options: dict = field(default_factory=dict)

    def validate(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; expected one of {ALGORITHMS}"
            )
        if not 0.0 < self.train_fraction < 1.0:
            raise ConfigurationError("train_fraction must be in (0, 1)")
        if not 0.0 <= self.threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        if self.shards < 0:
            raise ConfigurationError("shards must be >= 0")
        if self.executor not in ("serial", "mp", "tcp"):
            raise ConfigurationError(f"unknown executor {self.executor!r}")
        if self.control_plane not in ("replicated", "directory"):
            raise ConfigurationError(
                f"unknown control plane {self.control_plane!r}"
            )
        if self.control_plane == "directory" and self.shards < 1:
            raise ConfigurationError(
                "the directory control plane only applies to sharded "
                "execution (set shards >= 1)"
            )
        if (self.wal or self.resume) and self.shards < 1:
            raise ConfigurationError(
                "the simulation WAL records the sharded kernel's window "
                "stream (set shards >= 1 to use wal/resume)"
            )
        if self.faults and self.shards < 1:
            raise ConfigurationError(
                "fault injection targets the sharded tcp fleet "
                "(set shards >= 1 to use faults)"
            )


@dataclass
class EvaluationReport:
    """Outcome of one evaluation run: accuracy + communication cost."""

    algorithm: str
    metrics: MultiLabelReport
    total_messages: int
    total_bytes: int
    max_peer_sent_bytes: int
    max_peer_received_bytes: int
    virtual_time: float

    def summary(self) -> str:
        return (
            f"[{self.algorithm}] {self.metrics.summary()} | "
            f"msgs={self.total_messages} bytes={self.total_bytes} "
            f"maxTx={self.max_peer_sent_bytes} maxRx={self.max_peer_received_bytes} "
            f"t={self.virtual_time:.1f}s"
        )


def build_classifier(
    algorithm: str,
    scenario: Scenario,
    peer_data: PeerData,
    tags,
    seed: int,
    options: dict,
) -> P2PTagClassifier:
    """Construct one algorithm's classifier over a scenario.

    Module-level (rather than a system method) so sharded-training
    workloads — which must pickle to mp/tcp shard workers — can carry
    everything a worker needs without referencing the (unpicklable)
    system object.
    """
    if algorithm == "pace":
        from repro.p2pclass.pace import PaceClassifier, PaceConfig

        config = PaceConfig(seed=seed, **options)
        return PaceClassifier(scenario, peer_data, tags, config)
    if algorithm == "cempar":
        from repro.p2pclass.cempar import CemparClassifier, CemparConfig

        config = CemparConfig(seed=seed, **options)
        return CemparClassifier(scenario, peer_data, tags, config)
    if algorithm == "nbagg":
        from repro.p2pclass.nbagg import NBAggClassifier, NBAggConfig

        config = NBAggConfig(seed=seed, **options)
        return NBAggClassifier(scenario, peer_data, tags, config)
    if algorithm == "centralized":
        from repro.baselines.centralized import (
            CentralizedConfig,
            CentralizedTagger,
        )

        config = CentralizedConfig(seed=seed, **options)
        return CentralizedTagger(scenario, peer_data, tags, config)
    if algorithm == "local":
        from repro.baselines.localonly import LocalOnlyConfig, LocalOnlyTagger

        config = LocalOnlyConfig(seed=seed, **options)
        return LocalOnlyTagger(scenario, peer_data, tags, config)
    from repro.baselines.popularity import PopularityTagger

    return PopularityTagger(scenario, peer_data, tags)


class _ShardedTrainingWorkload:
    """The SPMD training workload for sharded verification runs.

    A plain data class (not a closure over the system) so it pickles into
    mp/tcp shard workers; ``__call__`` rebuilds the classifier against the
    worker's shard-local scenario and trains it frame-native.
    """

    def __init__(
        self, churn: str, peer_data: PeerData, algorithm: str, tags,
        options: dict, seed: int,
    ) -> None:
        self.churn = churn
        self.peer_data = peer_data
        self.algorithm = algorithm
        self.tags = tags
        self.options = options
        self.seed = seed

    def __call__(self, scenario: Scenario) -> None:
        if self.churn != "none":
            scenario.start_churn()
        classifier = build_classifier(
            self.algorithm, scenario, self.peer_data, self.tags,
            self.seed, self.options,
        )
        classifier.scalar_rounds = False
        classifier.transport.scalar_broadcast = False
        classifier.train()


class P2PDocTaggerPeer:
    """One user's P2PDocTagger instance.

    Holds the user's documents and tag metadata, and exposes the operations
    of the demo GUI: manual tagging, AutoTag, Suggest Tag, refinement, and
    the Library / Tag Cloud views.
    """

    def __init__(self, owner: int, system: "P2PDocTaggerSystem") -> None:
        self.owner = owner
        self.system = system
        self.store = TagMetadataStore()
        self.library = Library(self.store)

    # -- tagging operations --------------------------------------------------

    def manual_tag(self, doc_id: int, tags: Sequence[str]) -> None:
        """User assigns tags by hand (the bootstrap phase of §2)."""
        if not tags:
            raise ConfigurationError("manual tagging needs at least one tag")
        for tag in tags:
            self.store.assign(doc_id, tag, TagSource.MANUAL)

    def auto_tag(self, document: Document) -> FrozenSet[str]:
        """AutoTag button: classify and persist tags with confidences."""
        scores = self.system.predict_scores(self.owner, document)
        assigned = self.system.policy.assign(scores)
        self.store.assign_many(
            document.doc_id,
            {tag: scores.get(tag, 0.0) for tag in assigned},
            source=TagSource.AUTO,
            assigned_at=self.system.scenario.simulator.now,
        )
        return assigned

    def suggest_tags(
        self, document: Document, confidence_threshold: float = 0.3
    ) -> List[Suggestion]:
        """Suggest-Tag button: Suggestion Cloud entries for one document."""
        vector = self.system.vector_of(document)
        return self.system.suggestions.suggest(
            self.owner, vector, confidence_threshold
        )

    def refine(self, document: Document, corrected_tags: Sequence[str]) -> bool:
        """User fixes a mistagged document; returns True if retrain fired."""
        corrected = frozenset(corrected_tags)
        if not corrected:
            raise ConfigurationError("a refinement must assign at least one tag")
        self.store.replace(
            document.doc_id,
            {tag: 1.0 for tag in corrected},
            source=TagSource.REFINED,
            assigned_at=self.system.scenario.simulator.now,
        )
        refinement = Refinement(
            doc_id=document.doc_id,
            owner=self.owner,
            vector=self.system.vector_of(document),
            corrected_tags=corrected,
        )
        return self.system.refinement.refine(refinement)

    def tag_cloud(self) -> TagCloud:
        """This peer's Tag Cloud over its tagged documents."""
        return TagCloud(
            self.store.tags_of(doc_id) for doc_id in self.store.documents()
        )


class P2PDocTaggerSystem:
    """The whole network of tagging peers plus the collaborative model."""

    def __init__(
        self,
        corpus: Corpus,
        config: Optional[SystemConfig] = None,
    ) -> None:
        self.config = config or SystemConfig()
        self.config.validate()
        if len(corpus) == 0:
            raise ConfigurationError("corpus must not be empty")

        self.corpus = corpus.restrict_to_min_tag_support(
            self.config.min_tag_support
        )
        if not self.corpus.tag_universe():
            raise ConfigurationError(
                "no tags survive min_tag_support; lower it or enlarge the corpus"
            )
        self.pipeline = PreprocessingPipeline(
            dimension=self.config.feature_dimension
        )
        self.policy: ThresholdPolicy = FixedThreshold(self.config.threshold)

        owners = self.corpus.owners
        self._owner_to_peer = {owner: index for index, owner in enumerate(owners)}
        num_peers = len(owners)
        # With kernel sharding requested, the local system runs the same
        # decomposed-randomness scenario the shard workers will replay, so
        # the two executions are comparable byte-for-byte (the local run
        # stays the unsharded reference: shards=0 here).
        self._scenario_config = ScenarioConfig(
            num_peers=num_peers,
            overlay=self.config.overlay,
            churn=self.config.churn,
            codec=self.config.codec,
            mean_session=self.config.mean_session,
            mean_downtime=self.config.mean_downtime,
            shard=ShardSpec(num_peers=num_peers, seed=self.config.seed),
            rng_mode="perpeer" if self.config.shards >= 1 else "stream",
            jitter_floor=0.5 if self.config.shards >= 1 else 0.0,
            seed=self.config.seed,
        )
        self.scenario = Scenario(self._scenario_config)
        #: populated by train() when config.shards >= 1: the merged
        #: ShardedRun whose digest was verified against the local kernel
        self.sharded_run = None

        self.train_corpus, self.test_corpus = per_user_split(
            self.corpus, self.config.train_fraction, seed=self.config.seed
        )
        self._vector_cache: Dict[int, SparseVector] = {}
        self._peer_data = self._build_peer_data(self.train_corpus)
        self.classifier = self._build_classifier(self._peer_data)
        self.suggestions = SuggestionEngine(self.classifier)

        self.peers: Dict[int, P2PDocTaggerPeer] = {
            self._owner_to_peer[owner]: P2PDocTaggerPeer(
                self._owner_to_peer[owner], self
            )
            for owner in owners
        }
        self.refinement = RefinementLoop(
            self.classifier, TagMetadataStore(), retrain_every=10
        )
        self._register_manual_tags()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_corpus(
        cls, corpus: Corpus, algorithm: str = "pace", seed: int = 0, **overrides
    ) -> "P2PDocTaggerSystem":
        """Convenience constructor used throughout the examples."""
        config = SystemConfig(algorithm=algorithm, seed=seed, **overrides)
        return cls(corpus, config)

    def _build_peer_data(self, train: Corpus) -> PeerData:
        remapped: PeerData = {}
        for owner in train.owners:
            address = self._owner_to_peer[owner]
            items = []
            for document in train.documents_of(owner):
                vector = self.vector_of(document)
                items.append(TaggedVector(vector=vector, tags=document.tags))
            remapped[address] = items
        return remapped

    def _build_classifier(
        self, peer_data: PeerData, scenario: Optional[Scenario] = None
    ) -> P2PTagClassifier:
        scenario = scenario if scenario is not None else self.scenario
        return build_classifier(
            self.config.algorithm,
            scenario,
            peer_data,
            self.corpus.tag_universe(),
            self.config.seed,
            dict(self.config.algorithm_options),
        )

    def _register_manual_tags(self) -> None:
        """Training documents appear as manually tagged in each peer's store."""
        for owner in self.train_corpus.owners:
            peer = self.peers[self._owner_to_peer[owner]]
            for document in self.train_corpus.documents_of(owner):
                for tag in document.tags:
                    peer.store.assign(document.doc_id, tag, TagSource.MANUAL)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def vector_of(self, document: Document) -> SparseVector:
        cached = self._vector_cache.get(document.doc_id)
        if cached is None:
            cached = self.pipeline.process(document.text)
            self._vector_cache[document.doc_id] = cached
        return cached

    def peer_of(self, document: Document) -> P2PDocTaggerPeer:
        address = self._owner_to_peer.get(document.owner)
        if address is None:
            raise ConfigurationError(
                f"document owner {document.owner} has no peer"
            )
        return self.peers[address]

    def train(self) -> None:
        """Run collaborative learning (optionally under churn).

        With ``config.shards >= 1`` the same training additionally replays
        through the K-shard event kernel (:mod:`repro.sim.shard`) and the
        merged shard observables are verified byte-identical to the local
        kernel — every ``--shards`` run is a live proof of the sharding
        equivalence theorem.  Predictions serve from the (provably
        identical) local replica, which holds the complete model state.
        """
        if self.config.churn != "none":
            self.scenario.start_churn()
        self.classifier.train()
        if self.config.shards >= 1:
            self.sharded_run = self._verify_sharded_training()

    def _verify_sharded_training(self):
        from dataclasses import replace

        from repro.errors import SimulationError
        from repro.sim.shard import ShardedScenario, scenario_digest

        sharded_config = replace(
            self._scenario_config,
            shards=self.config.shards,
            executor=self.config.executor,
            control_plane=self.config.control_plane,
            wal=self.config.wal,
            resume=self.config.resume,
            faults=self.config.faults,
            tcp_hosts=self.config.tcp_hosts,
        )
        workload = _ShardedTrainingWorkload(
            self.config.churn,
            self._peer_data,
            self.config.algorithm,
            self.corpus.tag_universe(),
            dict(self.config.algorithm_options),
            self.config.seed,
        )
        run = ShardedScenario(
            sharded_config, executor=self.config.executor
        ).run(workload)
        local_digest = scenario_digest(
            self.scenario.stats, self.scenario.simulator.now
        )
        if run.digest() != local_digest:
            raise SimulationError(
                f"sharded training (K={run.shards}, {run.executor}) "
                "diverged from the local kernel: "
                f"{run.digest()[:16]}… != {local_digest[:16]}…"
            )
        return run

    def predict_scores(
        self, origin: int, document: Document
    ) -> Dict[str, float]:
        return self.classifier.predict_scores(origin, self.vector_of(document))

    def auto_tag_all(self) -> Dict[int, FrozenSet[str]]:
        """AutoTag every test document from its owner's peer."""
        assignments: Dict[int, FrozenSet[str]] = {}
        for document in self.test_corpus:
            peer = self.peer_of(document)
            assignments[document.doc_id] = peer.auto_tag(document.untagged())
        return assignments

    def evaluate(self, max_documents: Optional[int] = None) -> EvaluationReport:
        """Auto-tag the held-out 80 % and score against the true tags."""
        if not self.classifier.trained:
            raise NotTrainedError("call train() before evaluate()")
        documents = self.test_corpus.documents
        if max_documents is not None:
            documents = documents[:max_documents]
        true_sets: List[FrozenSet[str]] = []
        predicted: List[FrozenSet[str]] = []
        for document in documents:
            scores = self.predict_scores(
                self._owner_to_peer[document.owner], document
            )
            true_sets.append(document.tags)
            predicted.append(self.policy.assign(scores))
        metrics = MultiLabelReport.compute(
            true_sets, predicted, tags=self.corpus.tag_universe()
        )
        stats = self.scenario.stats
        return EvaluationReport(
            algorithm=self.config.algorithm,
            metrics=metrics,
            total_messages=stats.total_messages,
            total_bytes=stats.total_bytes,
            max_peer_sent_bytes=max(stats.per_peer_bytes.values(), default=0),
            max_peer_received_bytes=max(
                stats.per_peer_received.values(), default=0
            ),
            virtual_time=self.scenario.simulator.now,
        )

    def tune_thresholds(self) -> Dict[str, float]:
        """Replace the fixed threshold with per-tag F1-optimal thresholds.

        Thresholds are tuned on the *training* documents' scores (each peer
        already knows its own manual tags, so this needs no extra labels or
        communication beyond normal queries).  Returns the tuned map and
        installs a :class:`PerTagThreshold` policy.
        """
        if not self.classifier.trained:
            raise NotTrainedError("call train() before tune_thresholds()")
        from repro.core.multilabel import PerTagThreshold
        from repro.ml.evaluation import per_tag_thresholds

        score_maps: List[Dict[str, float]] = []
        true_sets: List[FrozenSet[str]] = []
        for document in self.train_corpus:
            origin = self._owner_to_peer[document.owner]
            score_maps.append(self.predict_scores(origin, document))
            true_sets.append(document.tags)
        thresholds = per_tag_thresholds(
            score_maps, true_sets, self.corpus.tag_universe()
        )
        self.policy = PerTagThreshold(thresholds, default=self.config.threshold)
        return thresholds

    def global_tag_cloud(self) -> TagCloud:
        """Tag cloud over every peer's tagged documents (Fig. 4)."""
        tag_sets: List[FrozenSet[str]] = []
        for peer in self.peers.values():
            tag_sets.extend(
                peer.store.tags_of(doc_id) for doc_id in peer.store.documents()
            )
        return TagCloud(tag_sets)
