"""Tag refinement (paper §2, "Tag Refinement").

"On the discovery of mismatched tags on documents, users can use the tagging
interface to modify the assigned tags ... Upon the refinement of tags,
P2PDocTagger will automatically update the classification model(s) in the
back-end, to adapt to their personal preference for future tagging."

:class:`RefinementLoop` collects corrections, folds them into the owning
peer's local training data, updates the metadata store, and retrains the
collaborative model.  Retraining is batched (``retrain_every``): rebuilding
the global model per keystroke would be absurd, and batching is what the
localized-conflict-resolution design implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional

from repro.core.metadata import TagMetadataStore, TagSource
from repro.errors import ConfigurationError
from repro.ml.sparse import SparseVector
from repro.p2pclass.base import P2PTagClassifier, TaggedVector


@dataclass
class Refinement:
    """One user correction: the document and its corrected tag set."""

    doc_id: int
    owner: int
    vector: SparseVector
    corrected_tags: FrozenSet[str]


class RefinementLoop:
    """Applies corrections and keeps models in sync.

    Parameters
    ----------
    classifier:
        The trained collaborative classifier to update.
    store:
        The metadata store reflecting current tag assignments.
    retrain_every:
        Refinements accumulated before a model retrain is triggered.
    """

    def __init__(
        self,
        classifier: P2PTagClassifier,
        store: TagMetadataStore,
        retrain_every: int = 10,
    ) -> None:
        if retrain_every < 1:
            raise ConfigurationError("retrain_every must be >= 1")
        self.classifier = classifier
        self.store = store
        self.retrain_every = retrain_every
        self.pending: List[Refinement] = []
        self.applied_count = 0
        self.retrain_count = 0
        self.incremental_count = 0

    def refine(self, refinement: Refinement) -> bool:
        """Record one correction.  Returns True if a retrain was triggered."""
        if not refinement.corrected_tags:
            raise ConfigurationError("a refinement must assign at least one tag")
        self.store.replace(
            refinement.doc_id,
            {tag: 1.0 for tag in refinement.corrected_tags},
            source=TagSource.REFINED,
        )
        self.pending.append(refinement)
        self.applied_count += 1
        if len(self.pending) >= self.retrain_every:
            self.flush()
            return True
        return False

    def flush(self) -> None:
        """Fold pending corrections into peer data and update the model.

        Classifiers advertising :attr:`supports_incremental` receive only the
        *delta* examples (cheap statistics uploads); everything else gets a
        full retrain.
        """
        if not self.pending:
            return
        by_owner: Dict[int, List[TaggedVector]] = {}
        for refinement in self.pending:
            item = TaggedVector(
                vector=refinement.vector, tags=refinement.corrected_tags
            )
            self.classifier.peer_data.setdefault(refinement.owner, []).append(item)
            by_owner.setdefault(refinement.owner, []).append(item)
        self.pending.clear()
        if self.classifier.supports_incremental:
            for owner, items in sorted(by_owner.items()):
                self.classifier.incremental_update(owner, items)
            self.incremental_count += 1
        else:
            self.classifier.train()
            self.retrain_count += 1

    @property
    def pending_count(self) -> int:
        return len(self.pending)
