"""Tag metadata store.

"Once tags are assigned, they are saved as the files' meta-data, which are
supported by numerous operating systems ... other PIM systems can access
these tags" (paper §2).  This module is the xattr-equivalent: a per-peer
store mapping file identifiers to tag records with provenance (manual, auto,
refined), confidence, and assignment time, persistable as JSON so external
tools could read it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple, Union


class TagSource(str, Enum):
    """How a tag landed on a document."""

    MANUAL = "manual"
    AUTO = "auto"
    REFINED = "refined"


@dataclass
class TagRecord:
    """One tag on one document."""

    tag: str
    source: TagSource
    confidence: float = 1.0
    assigned_at: float = 0.0

    def to_dict(self) -> dict:
        return {
            "tag": self.tag,
            "source": self.source.value,
            "confidence": self.confidence,
            "assigned_at": self.assigned_at,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "TagRecord":
        return cls(
            tag=str(record["tag"]),
            source=TagSource(record["source"]),
            confidence=float(record.get("confidence", 1.0)),
            assigned_at=float(record.get("assigned_at", 0.0)),
        )


class TagMetadataStore:
    """Per-peer document -> tag records mapping with JSON persistence."""

    def __init__(self) -> None:
        self._records: Dict[int, Dict[str, TagRecord]] = {}

    # -- writing ----------------------------------------------------------

    def assign(
        self,
        doc_id: int,
        tag: str,
        source: TagSource = TagSource.MANUAL,
        confidence: float = 1.0,
        assigned_at: float = 0.0,
    ) -> None:
        """Add or overwrite one tag on a document."""
        self._records.setdefault(doc_id, {})[tag] = TagRecord(
            tag=tag, source=source, confidence=confidence, assigned_at=assigned_at
        )

    def assign_many(
        self,
        doc_id: int,
        tags_with_confidence: Dict[str, float],
        source: TagSource = TagSource.AUTO,
        assigned_at: float = 0.0,
    ) -> None:
        for tag, confidence in tags_with_confidence.items():
            self.assign(doc_id, tag, source, confidence, assigned_at)

    def remove(self, doc_id: int, tag: str) -> bool:
        """Remove one tag; True if it was present."""
        tags = self._records.get(doc_id)
        if tags and tag in tags:
            del tags[tag]
            if not tags:
                del self._records[doc_id]
            return True
        return False

    def replace(
        self,
        doc_id: int,
        tags: Dict[str, float],
        source: TagSource = TagSource.REFINED,
        assigned_at: float = 0.0,
    ) -> None:
        """Replace a document's whole tag set (the refinement operation)."""
        self._records[doc_id] = {
            tag: TagRecord(
                tag=tag, source=source, confidence=confidence,
                assigned_at=assigned_at,
            )
            for tag, confidence in tags.items()
        }

    def clear(self, doc_id: int) -> None:
        self._records.pop(doc_id, None)

    # -- reading -------------------------------------------------------------

    def tags_of(self, doc_id: int, min_confidence: float = 0.0) -> FrozenSet[str]:
        records = self._records.get(doc_id, {})
        return frozenset(
            tag for tag, rec in records.items() if rec.confidence >= min_confidence
        )

    def records_of(self, doc_id: int) -> List[TagRecord]:
        return sorted(self._records.get(doc_id, {}).values(), key=lambda r: r.tag)

    def documents(self) -> List[int]:
        return sorted(self._records)

    def documents_with(self, tag: str, min_confidence: float = 0.0) -> List[int]:
        return sorted(
            doc_id
            for doc_id, tags in self._records.items()
            if tag in tags and tags[tag].confidence >= min_confidence
        )

    def all_tags(self) -> List[str]:
        tags = set()
        for records in self._records.values():
            tags |= set(records)
        return sorted(tags)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._records

    def iter_assignments(self) -> Iterator[Tuple[int, TagRecord]]:
        for doc_id in sorted(self._records):
            for tag in sorted(self._records[doc_id]):
                yield doc_id, self._records[doc_id][tag]

    # -- persistence -----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            str(doc_id): [rec.to_dict() for rec in self.records_of(doc_id)]
            for doc_id in self.documents()
        }
        target.write_text(json.dumps(payload, indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TagMetadataStore":
        store = cls()
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        for doc_id, records in payload.items():
            for record in records:
                rec = TagRecord.from_dict(record)
                store._records.setdefault(int(doc_id), {})[rec.tag] = rec
        return store
