"""The Library component (paper Fig. 4, left navigation).

"Library, where all tagged documents are tracked to allow users to browse or
search documents using tags."  Supports tag queries (all-of / any-of / none-
of), confidence filtering (the slider), and free-text search over tag names.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.core.metadata import TagMetadataStore, TagSource


class Library:
    """Tag-centric view over a :class:`TagMetadataStore`."""

    def __init__(self, store: TagMetadataStore) -> None:
        self.store = store

    # -- browse -----------------------------------------------------------

    def browse_by_tag(
        self, tag: str, min_confidence: float = 0.0
    ) -> List[int]:
        """Documents carrying ``tag`` (at or above the confidence slider)."""
        return self.store.documents_with(tag, min_confidence)

    def tags(self) -> List[str]:
        return self.store.all_tags()

    def tag_frequencies(self) -> Dict[str, int]:
        """tag -> number of documents carrying it (tag cloud font sizes)."""
        return {tag: len(self.store.documents_with(tag)) for tag in self.tags()}

    # -- search ------------------------------------------------------------

    def search(
        self,
        all_of: Iterable[str] = (),
        any_of: Iterable[str] = (),
        none_of: Iterable[str] = (),
        min_confidence: float = 0.0,
    ) -> List[int]:
        """Documents matching a tag query.

        ``all_of`` tags must all be present, at least one ``any_of`` tag (if
        given), and no ``none_of`` tag.
        """
        all_set = frozenset(all_of)
        any_set = frozenset(any_of)
        none_set = frozenset(none_of)
        matches: List[int] = []
        for doc_id in self.store.documents():
            tags = self.store.tags_of(doc_id, min_confidence)
            if all_set and not all_set <= tags:
                continue
            if any_set and not any_set & tags:
                continue
            if none_set & tags:
                continue
            matches.append(doc_id)
        return matches

    def search_tag_names(self, query: str) -> List[str]:
        """Tags whose name contains ``query`` (case-insensitive)."""
        needle = query.lower()
        return [tag for tag in self.tags() if needle in tag.lower()]

    # -- provenance views --------------------------------------------------------

    def documents_by_source(self, source: TagSource) -> List[int]:
        """Documents having at least one tag from ``source``."""
        result = []
        for doc_id in self.store.documents():
            if any(rec.source == source for rec in self.store.records_of(doc_id)):
                result.append(doc_id)
        return result

    def low_confidence_documents(
        self, below: float = 0.5
    ) -> List[int]:
        """Documents whose *best* tag confidence is below ``below``.

        These are the refinement candidates surfaced to the user.
        """
        weak: List[int] = []
        for doc_id in self.store.documents():
            records = self.store.records_of(doc_id)
            if records and max(r.confidence for r in records) < below:
                weak.append(doc_id)
        return weak

    def summary(self) -> str:
        frequencies = self.tag_frequencies()
        top = sorted(frequencies.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        top_repr = ", ".join(f"{tag}({count})" for tag, count in top)
        return (
            f"Library(documents={len(self.store)}, tags={len(frequencies)}, "
            f"top: {top_repr})"
        )
