"""Multi-label assignment policies: per-tag scores -> tag sets.

The classifiers answer per-tag scores (the one-vs-all decomposition of paper
§2); a policy decides which tags are *assigned*.  The GUI's confidence
slider corresponds to :class:`FixedThreshold`; :class:`TopKPolicy` mirrors
"assign the k best suggestions".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet

from repro.errors import ConfigurationError


class ThresholdPolicy(ABC):
    """Turns a per-tag score map into an assigned tag set."""

    @abstractmethod
    def assign(self, scores: Dict[str, float]) -> FrozenSet[str]:
        """Select the assigned tags."""


class FixedThreshold(ThresholdPolicy):
    """Assign every tag scoring at or above ``threshold``.

    ``fallback_best`` keeps AutoTag from producing untagged files: when
    nothing clears the bar, the single best tag is assigned.
    """

    def __init__(self, threshold: float = 0.5, fallback_best: bool = True) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        self.threshold = threshold
        self.fallback_best = fallback_best

    def assign(self, scores: Dict[str, float]) -> FrozenSet[str]:
        chosen = frozenset(t for t, s in scores.items() if s >= self.threshold)
        if chosen or not self.fallback_best or not scores:
            return chosen
        best = max(scores.items(), key=lambda kv: kv[1])
        return frozenset({best[0]})


class TopKPolicy(ThresholdPolicy):
    """Assign the ``k`` highest-scoring tags (above an optional floor)."""

    def __init__(self, k: int = 3, floor: float = 0.0) -> None:
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        if not 0.0 <= floor <= 1.0:
            raise ConfigurationError("floor must be in [0, 1]")
        self.k = k
        self.floor = floor

    def assign(self, scores: Dict[str, float]) -> FrozenSet[str]:
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return frozenset(
            tag for tag, score in ranked[: self.k] if score >= self.floor
        )


class PerTagThreshold(ThresholdPolicy):
    """Per-tag thresholds (typically tuned on validation data).

    Built from :func:`repro.ml.evaluation.per_tag_thresholds`; tags without
    a tuned value use ``default``.  ``fallback_best`` mirrors
    :class:`FixedThreshold`'s never-empty behaviour.
    """

    def __init__(
        self,
        thresholds: Dict[str, float],
        default: float = 0.5,
        fallback_best: bool = True,
    ) -> None:
        for tag, value in thresholds.items():
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"threshold for {tag!r} out of [0, 1]: {value}"
                )
        if not 0.0 <= default <= 1.0:
            raise ConfigurationError("default must be in [0, 1]")
        self.thresholds = dict(thresholds)
        self.default = default
        self.fallback_best = fallback_best

    def assign(self, scores: Dict[str, float]) -> FrozenSet[str]:
        chosen = frozenset(
            tag
            for tag, score in scores.items()
            if score >= self.thresholds.get(tag, self.default)
        )
        if chosen or not self.fallback_best or not scores:
            return chosen
        best = max(scores.items(), key=lambda kv: kv[1])
        return frozenset({best[0]})
