"""P2PDocTagger core — the system of paper Fig. 1.

Pipeline stages: document processing -> (manual tagging | P2P collaborative
learning -> auto tagging) -> refinement, with tags stored as file metadata
and browsed through the Library and Tag Cloud components.
"""

from repro.core.multilabel import (
    ThresholdPolicy,
    FixedThreshold,
    TopKPolicy,
    PerTagThreshold,
)
from repro.core.metadata import TagRecord, TagMetadataStore, TagSource
from repro.core.filebrowser import FileBrowser, VirtualFileSystem
from repro.core.library import Library
from repro.core.tagcloud import TagCloud, CloudEntry
from repro.core.suggestions import SuggestionEngine, Suggestion
from repro.core.refinement import RefinementLoop, Refinement
from repro.core.tagger import (
    P2PDocTaggerPeer,
    P2PDocTaggerSystem,
    EvaluationReport,
    SystemConfig,
)

__all__ = [
    "ThresholdPolicy",
    "FixedThreshold",
    "TopKPolicy",
    "PerTagThreshold",
    "TagRecord",
    "TagMetadataStore",
    "TagSource",
    "FileBrowser",
    "VirtualFileSystem",
    "Library",
    "TagCloud",
    "CloudEntry",
    "SuggestionEngine",
    "Suggestion",
    "RefinementLoop",
    "Refinement",
    "P2PDocTaggerPeer",
    "P2PDocTaggerSystem",
    "EvaluationReport",
    "SystemConfig",
]
