"""The File Browser component (paper Fig. 3, left navigation).

"File Browser, which allows users to browse their file system to tag their
documents" and §2: "users select documents (or folders containing
documents) that they wish to tag.  This ensures that all files processed by
the system are approved by the users."

:class:`VirtualFileSystem` models a user's directory tree with documents at
paths; :class:`FileBrowser` supports navigation, selection of files *and
folders* (recursive), and yields exactly the approved document set that the
tagging pipeline is allowed to touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.data.corpus import Document
from repro.errors import ConfigurationError


def _normalize(path: str) -> str:
    """Canonical form: leading slash, no trailing slash (except root)."""
    parts = [part for part in path.split("/") if part]
    return "/" + "/".join(parts)


def _parent(path: str) -> str:
    if path == "/":
        return "/"
    return _normalize(path.rsplit("/", 1)[0] or "/")


class VirtualFileSystem:
    """A directory tree holding documents at file paths."""

    def __init__(self) -> None:
        self._directories: Set[str] = {"/"}
        self._files: Dict[str, Document] = {}

    # -- building -----------------------------------------------------------

    def mkdir(self, path: str) -> str:
        """Create a directory (and its ancestors); returns the normal form."""
        normalized = _normalize(path)
        cursor = normalized
        to_add = []
        while cursor not in self._directories:
            to_add.append(cursor)
            cursor = _parent(cursor)
        self._directories.update(to_add)
        return normalized

    def add_document(self, path: str, document: Document) -> str:
        """Place ``document`` at ``path`` (parents auto-created)."""
        normalized = _normalize(path)
        if normalized in self._directories:
            raise ConfigurationError(f"{normalized} is a directory")
        self.mkdir(_parent(normalized))
        self._files[normalized] = document
        return normalized

    # -- queries ---------------------------------------------------------------

    def is_directory(self, path: str) -> bool:
        return _normalize(path) in self._directories

    def is_file(self, path: str) -> bool:
        return _normalize(path) in self._files

    def document_at(self, path: str) -> Document:
        normalized = _normalize(path)
        if normalized not in self._files:
            raise ConfigurationError(f"no document at {normalized}")
        return self._files[normalized]

    def list_directory(self, path: str) -> Tuple[List[str], List[str]]:
        """(subdirectories, files) directly under ``path``, sorted."""
        normalized = _normalize(path)
        if normalized not in self._directories:
            raise ConfigurationError(f"no directory {normalized}")
        prefix = normalized if normalized == "/" else normalized + "/"
        subdirs = sorted(
            d for d in self._directories
            if d != normalized and _parent(d) == normalized
        )
        files = sorted(
            f for f in self._files if f.startswith(prefix)
            and "/" not in f[len(prefix):]
        )
        return subdirs, files

    def walk(self, path: str = "/") -> List[str]:
        """Every file path at or under ``path``, sorted."""
        normalized = _normalize(path)
        if normalized in self._files:
            return [normalized]
        if normalized not in self._directories:
            raise ConfigurationError(f"no such path {normalized}")
        prefix = normalized if normalized == "/" else normalized + "/"
        return sorted(f for f in self._files if f.startswith(prefix))

    def __len__(self) -> int:
        return len(self._files)

    @classmethod
    def from_documents(
        cls,
        documents: Iterable[Document],
        folders: int = 3,
        prefix: str = "/home/user/documents",
    ) -> "VirtualFileSystem":
        """Lay documents out under ``folders`` subdirectories (round-robin).

        A convenience for demos: real deployments map actual file trees.
        """
        if folders < 1:
            raise ConfigurationError("folders must be >= 1")
        fs = cls()
        for index, document in enumerate(documents):
            folder = f"{prefix}/folder{index % folders:02d}"
            fs.add_document(f"{folder}/doc{document.doc_id:05d}.txt", document)
        return fs


@dataclass
class FileBrowser:
    """Navigation + selection over a :class:`VirtualFileSystem`.

    The selection is the user-approval boundary: only selected documents may
    enter preprocessing/tagging.
    """

    fs: VirtualFileSystem
    cwd: str = "/"
    _selected: Set[str] = field(default_factory=set)

    # -- navigation ---------------------------------------------------------

    def cd(self, path: str) -> str:
        target = path if path.startswith("/") else f"{self.cwd}/{path}"
        normalized = _normalize(target)
        if not self.fs.is_directory(normalized):
            raise ConfigurationError(f"no directory {normalized}")
        self.cwd = normalized
        return self.cwd

    def ls(self) -> Tuple[List[str], List[str]]:
        return self.fs.list_directory(self.cwd)

    # -- selection (the approval boundary) -------------------------------------

    def select(self, path: str) -> int:
        """Select a file, or a folder recursively; returns files added."""
        target = path if path.startswith("/") else f"{self.cwd}/{path}"
        files = self.fs.walk(target)
        before = len(self._selected)
        self._selected.update(files)
        return len(self._selected) - before

    def deselect(self, path: str) -> int:
        target = path if path.startswith("/") else f"{self.cwd}/{path}"
        normalized = _normalize(target)
        if self.fs.is_file(normalized):
            files = [normalized]
        else:
            files = self.fs.walk(normalized)
        before = len(self._selected)
        self._selected.difference_update(files)
        return before - len(self._selected)

    def clear_selection(self) -> None:
        self._selected.clear()

    @property
    def selected_paths(self) -> List[str]:
        return sorted(self._selected)

    def selected_documents(self) -> List[Document]:
        """The approved documents, in path order — the tagging input set."""
        return [self.fs.document_at(path) for path in self.selected_paths]

    def __len__(self) -> int:
        return len(self._selected)
