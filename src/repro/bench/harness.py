"""End-to-end experiment harness: corpus -> system -> train -> evaluate.

One :class:`ExperimentSetting` fully determines a run (including seeds), so
every number in EXPERIMENTS.md regenerates bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.tagger import EvaluationReport, P2PDocTaggerSystem, SystemConfig
from repro.data.corpus import Corpus
from repro.data.delicious import DeliciousGenerator


def standard_corpus(
    num_users: int = 12,
    seed: int = 0,
    num_tags: int = 8,
    docs_per_user: int = 16,
    interest_concentration: float = 0.5,
) -> Corpus:
    """The shared benchmark corpus: Delicious-like, modest size.

    The paper's demonstration range (50-200 documents/user, 500+ peers) is
    exercised by ``examples/large_network.py``; benchmarks use a scaled-down
    corpus so the full table regenerates in seconds while preserving the
    comparative shape.
    """
    return DeliciousGenerator(
        num_users=num_users,
        seed=seed,
        num_tags=num_tags,
        docs_per_user_range=(docs_per_user, docs_per_user),
        vocabulary_size=600,
        topic_words_per_tag=35,
        doc_length_range=(30, 70),
        interest_concentration=interest_concentration,
    ).generate()


@dataclass
class ExperimentSetting:
    """Everything one experiment run depends on."""

    algorithm: str = "pace"
    num_users: int = 12
    num_tags: int = 8
    docs_per_user: int = 16
    interest_concentration: float = 0.5
    overlay: str = "chord"
    churn: str = "none"
    codec: str = "identity"
    mean_session: float = 600.0
    mean_downtime: float = 60.0
    train_fraction: float = 0.2
    threshold: float = 0.5
    max_eval_documents: Optional[int] = 60
    seed: int = 0
    algorithm_options: dict = field(default_factory=dict)

    def label(self) -> str:
        return (
            f"{self.algorithm}/N={self.num_users}/churn={self.churn}/"
            f"seed={self.seed}"
        )


@dataclass
class ExperimentResult:
    """One row of an experiment table."""

    setting: ExperimentSetting
    report: EvaluationReport

    @property
    def micro_f1(self) -> float:
        return self.report.metrics.micro_f1

    @property
    def macro_f1(self) -> float:
        return self.report.metrics.macro_f1

    @property
    def hamming(self) -> float:
        return self.report.metrics.hamming_loss

    @property
    def total_bytes(self) -> int:
        return self.report.total_bytes

    @property
    def total_messages(self) -> int:
        return self.report.total_messages


def run_experiment(setting: ExperimentSetting) -> ExperimentResult:
    """Generate the corpus, build and train the system, evaluate, report."""
    corpus = standard_corpus(
        num_users=setting.num_users,
        seed=setting.seed,
        num_tags=setting.num_tags,
        docs_per_user=setting.docs_per_user,
        interest_concentration=setting.interest_concentration,
    )
    system = P2PDocTaggerSystem(
        corpus,
        SystemConfig(
            algorithm=setting.algorithm,
            overlay=setting.overlay,
            churn=setting.churn,
            codec=setting.codec,
            mean_session=setting.mean_session,
            mean_downtime=setting.mean_downtime,
            train_fraction=setting.train_fraction,
            threshold=setting.threshold,
            seed=setting.seed,
            algorithm_options=dict(setting.algorithm_options),
        ),
    )
    system.train()
    report = system.evaluate(max_documents=setting.max_eval_documents)
    return ExperimentResult(setting=setting, report=report)


def build_system(setting: ExperimentSetting) -> P2PDocTaggerSystem:
    """System construction only (for benchmarks that measure phases)."""
    corpus = standard_corpus(
        num_users=setting.num_users,
        seed=setting.seed,
        num_tags=setting.num_tags,
        docs_per_user=setting.docs_per_user,
        interest_concentration=setting.interest_concentration,
    )
    return P2PDocTaggerSystem(
        corpus,
        SystemConfig(
            algorithm=setting.algorithm,
            overlay=setting.overlay,
            churn=setting.churn,
            codec=setting.codec,
            mean_session=setting.mean_session,
            mean_downtime=setting.mean_downtime,
            train_fraction=setting.train_fraction,
            threshold=setting.threshold,
            seed=setting.seed,
            algorithm_options=dict(setting.algorithm_options),
        ),
    )
