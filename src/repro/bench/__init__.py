"""Shared experiment harness for the benchmarks in ``benchmarks/``.

Every table/figure benchmark drives :func:`repro.bench.harness.run_experiment`
with a different parameter sweep and prints its rows through
:mod:`repro.bench.reporting`, so all experiments share one code path from
corpus generation to metric extraction.
"""

from repro.bench.harness import (
    ExperimentSetting,
    ExperimentResult,
    run_experiment,
    standard_corpus,
)
from repro.bench.reporting import format_table, format_row

__all__ = [
    "ExperimentSetting",
    "ExperimentResult",
    "run_experiment",
    "standard_corpus",
    "format_table",
    "format_row",
]
