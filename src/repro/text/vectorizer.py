"""Document vectorization: bag-of-words, TF-IDF, and the full pipeline.

The paper's preprocessing chain is: filter stop words and user-specified
sensitive words -> Porter-stem -> represent each document as a sparse vector
``{w_1, ..., w_m}`` where attribute id = word id and value = word weight.

:class:`PreprocessingPipeline` packages that chain.  In the distributed
setting all peers must agree on feature ids without exchanging lexicons, so
the default id scheme is *feature hashing* (:func:`stable_word_id`): ids are
stable hashes into a fixed-size space, exactly reproducible on every peer.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import VocabularyError
from repro.ml.sparse import SparseVector
from repro.text.lexicon import Lexicon, stable_word_id
from repro.text.porter import PorterStemmer
from repro.text.sensitive import SensitiveWordFilter
from repro.text.stopwords import ENGLISH_STOP_WORDS
from repro.text.tokenizer import tokenize


class BagOfWordsVectorizer:
    """Term-frequency vectorizer over a fixed hashed feature space.

    Parameters
    ----------
    dimension:
        Size of the hashed feature space.  Collisions are possible but rare
        for realistic vocabularies; the privacy analysis in the paper in fact
        *benefits* from hashing (ids reveal even less than a shared lexicon).
    sublinear_tf:
        If True, use ``1 + log(tf)`` instead of raw term frequency.
    """

    def __init__(self, dimension: int = 2 ** 18, sublinear_tf: bool = False) -> None:
        if dimension <= 0:
            raise VocabularyError("dimension must be positive")
        self.dimension = dimension
        self.sublinear_tf = sublinear_tf

    def vectorize_tokens(self, tokens: Sequence[str]) -> SparseVector:
        """Map stemmed tokens to a sparse TF vector."""
        counts: Counter = Counter(
            stable_word_id(token, self.dimension) for token in tokens
        )
        if not self.sublinear_tf:
            return SparseVector.from_counts(counts)
        return SparseVector({k: 1.0 + math.log(v) for k, v in counts.items()})


class TfidfTransformer:
    """Rescales TF vectors by inverse document frequency.

    IDF statistics are estimated from the *local* training documents of each
    peer (no global coordination needed); ``idf = log((1 + n) / (1 + df)) + 1``
    with smoothing so unseen features keep weight 1.
    """

    def __init__(self) -> None:
        self._df: Counter = Counter()
        self._num_documents = 0

    def fit(self, vectors: Iterable[SparseVector]) -> "TfidfTransformer":
        for vector in vectors:
            self._num_documents += 1
            for feature_id in vector:
                self._df[feature_id] += 1
        return self

    @property
    def num_documents(self) -> int:
        return self._num_documents

    def idf(self, feature_id: int) -> float:
        df = self._df.get(feature_id, 0)
        return math.log((1.0 + self._num_documents) / (1.0 + df)) + 1.0

    def transform(self, vector: SparseVector, normalize: bool = True) -> SparseVector:
        if self._num_documents == 0:
            raise VocabularyError("TfidfTransformer.transform called before fit")
        weighted = SparseVector(
            {fid: value * self.idf(fid) for fid, value in vector.items()}
        )
        return weighted.normalized() if normalize else weighted


@dataclass
class PreprocessingPipeline:
    """The paper's full preprocessing chain as one configurable object.

    ``process(text)`` returns the sparse document vector; ``tokens(text)``
    exposes the intermediate stemmed tokens (used by the library's snippet
    display and by tests).
    """

    dimension: int = 2 ** 18
    sublinear_tf: bool = False
    normalize: bool = True
    use_stop_words: bool = True
    min_token_length: int = 2
    sensitive_filter: SensitiveWordFilter = field(default_factory=SensitiveWordFilter)
    _stemmer: PorterStemmer = field(default_factory=PorterStemmer, repr=False)
    _stem_cache: Dict[str, str] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._vectorizer = BagOfWordsVectorizer(
            dimension=self.dimension, sublinear_tf=self.sublinear_tf
        )
        self._tfidf: Optional[TfidfTransformer] = None

    def fit_tfidf(self, texts: Iterable[str]) -> "PreprocessingPipeline":
        """Estimate IDF weights from ``texts`` and enable TF-IDF weighting.

        The paper's vectors carry word *weights*; raw TF is the default and
        TF-IDF an opt-in refinement.  Each peer fits on its **local**
        documents only — no IDF statistics are exchanged, so the privacy
        posture is unchanged.
        """
        transformer = TfidfTransformer()
        transformer.fit(
            self._vectorizer.vectorize_tokens(self.tokens(text))
            for text in texts
        )
        if transformer.num_documents == 0:
            raise VocabularyError("fit_tfidf needs at least one document")
        self._tfidf = transformer
        return self

    @property
    def uses_tfidf(self) -> bool:
        return self._tfidf is not None

    def tokens(self, text: str) -> List[str]:
        """Tokenize, filter stop/sensitive words, and stem."""
        raw = tokenize(text, min_length=self.min_token_length)
        if self.use_stop_words:
            raw = [token for token in raw if token not in ENGLISH_STOP_WORDS]
        raw = self.sensitive_filter.filter(raw)
        stemmed = []
        cache = self._stem_cache
        for token in raw:
            cached = cache.get(token)
            if cached is None:
                cached = self._stemmer.stem(token)
                cache[token] = cached
            stemmed.append(cached)
        return stemmed

    def process(self, text: str) -> SparseVector:
        """Full chain: text -> sparse TF vector in the hashed feature space.

        L2 normalization (default on) removes document-length effects and
        keeps RBF-kernel distances in [0, 2] — both SVM families depend on
        it for text.
        """
        vector = self._vectorizer.vectorize_tokens(self.tokens(text))
        if self._tfidf is not None:
            return self._tfidf.transform(vector, normalize=self.normalize)
        return vector.normalized() if self.normalize else vector

    def process_many(self, texts: Iterable[str]) -> List[SparseVector]:
        return [self.process(text) for text in texts]


def build_lexicon(
    texts: Iterable[str],
    pipeline: Optional[PreprocessingPipeline] = None,
    min_df: int = 1,
) -> Lexicon:
    """Build a compact (non-hashed) lexicon over ``texts``.

    The hashed pipeline is what the P2P system uses; this helper exists for
    the centralized baseline and for introspection (mapping ids back to words
    in the tag cloud examples).
    """
    pipeline = pipeline or PreprocessingPipeline()
    lexicon = Lexicon()
    for text in texts:
        lexicon.add_document(pipeline.tokens(text))
    if min_df > 1:
        lexicon = lexicon.prune(min_df=min_df)
    return lexicon
