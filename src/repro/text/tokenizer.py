"""Word and sentence tokenization for English text.

The tokenizer is intentionally simple and deterministic: lowercase, split on
non-alphanumeric boundaries, keep internal apostrophes and hyphens collapsed
away, and drop pure numbers or very short fragments.  This matches the
information-retrieval style preprocessing the paper describes.
"""

from __future__ import annotations

import re
from typing import Iterator, List

_WORD_RE = re.compile(r"[a-z]+(?:'[a-z]+)?")
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")


def tokenize(text: str, min_length: int = 2, max_length: int = 40) -> List[str]:
    """Split ``text`` into lowercase word tokens.

    Tokens shorter than ``min_length`` or longer than ``max_length`` are
    dropped — single letters carry almost no recognition value and extremely
    long tokens are usually markup noise.

    >>> tokenize("The QUICK brown-fox, jumps over 12 dogs!")
    ['the', 'quick', 'brown', 'fox', 'jumps', 'over', 'dogs']
    """
    if not text:
        return []
    lowered = text.lower()
    tokens = []
    for match in _WORD_RE.finditer(lowered):
        token = match.group(0)
        # Collapse possessives: "user's" -> "user".
        if "'" in token:
            token = token.split("'", 1)[0]
        if min_length <= len(token) <= max_length:
            tokens.append(token)
    return tokens


def iter_tokens(text: str, min_length: int = 2, max_length: int = 40) -> Iterator[str]:
    """Generator variant of :func:`tokenize` for very large documents."""
    lowered = text.lower() if text else ""
    for match in _WORD_RE.finditer(lowered):
        token = match.group(0)
        if "'" in token:
            token = token.split("'", 1)[0]
        if min_length <= len(token) <= max_length:
            yield token


def sentence_split(text: str) -> List[str]:
    """Split ``text`` into sentences on terminal punctuation.

    Used by the example applications to show snippets around suggested tags;
    the classifier itself never needs sentence structure (word order is
    deliberately discarded for privacy, per the paper).
    """
    if not text:
        return []
    parts = [part.strip() for part in _SENTENCE_RE.split(text)]
    return [part for part in parts if part]
