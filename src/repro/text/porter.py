"""The Porter stemming algorithm (Porter, 1980), implemented from scratch.

The paper normalizes words "using the porter stemming algorithm to remove the
commoner morphological and inflexional endings (English)".  This is a faithful
implementation of the original algorithm as published in *Program* 14(3),
including all five steps and the measure/vowel/double-consonant conditions.

The canonical test pairs (``caresses -> caress``, ``ponies -> poni``,
``relational -> relat``, ...) from Porter's paper are exercised in the test
suite.
"""

from __future__ import annotations

_VOWELS = frozenset("aeiou")


class PorterStemmer:
    """Stateless Porter stemmer; use :meth:`stem` or module-level :func:`stem`."""

    # ------------------------------------------------------------------
    # Condition helpers.  All operate on the stem (word minus candidate
    # suffix) using the original paper's definitions.
    # ------------------------------------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        """True if ``word[i]`` is a consonant in Porter's sense.

        ``y`` is a consonant when at the start or when following a vowel-like
        position; concretely, ``y`` after a consonant is a vowel.
        """
        char = word[i]
        if char in _VOWELS:
            return False
        if char == "y":
            if i == 0:
                return True
            return not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem_: str) -> int:
        """Porter's *m*: the number of VC sequences in ``stem_``.

        A word has form ``[C](VC)^m[V]`` — ``m`` counts vowel-consonant
        alternations after the optional leading consonant run.
        """
        m = 0
        i = 0
        n = len(stem_)
        # Skip initial consonant run.
        while i < n and cls._is_consonant(stem_, i):
            i += 1
        while i < n:
            # Vowel run.
            while i < n and not cls._is_consonant(stem_, i):
                i += 1
            if i >= n:
                break
            # Consonant run -> one VC sequence completed.
            while i < n and cls._is_consonant(stem_, i):
                i += 1
            m += 1
        return m

    @classmethod
    def _contains_vowel(cls, stem_: str) -> bool:
        return any(not cls._is_consonant(stem_, i) for i in range(len(stem_)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        if len(word) < 2:
            return False
        if word[-1] != word[-2]:
            return False
        return cls._is_consonant(word, len(word) - 1)

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        """True if word ends consonant-vowel-consonant, last not w/x/y.

        Used by steps 1b and 5b to decide whether to restore a final 'e'.
        """
        if len(word) < 3:
            return False
        if not cls._is_consonant(word, len(word) - 3):
            return False
        if cls._is_consonant(word, len(word) - 2):
            return False
        if not cls._is_consonant(word, len(word) - 1):
            return False
        return word[-1] not in "wxy"

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    @classmethod
    def _step1a(cls, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    @classmethod
    def _step1b(cls, word: str) -> str:
        if word.endswith("eed"):
            stem_ = word[:-3]
            if cls._measure(stem_) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed"):
            stem_ = word[:-2]
            if cls._contains_vowel(stem_):
                word = stem_
                flag = True
        elif word.endswith("ing"):
            stem_ = word[:-3]
            if cls._contains_vowel(stem_):
                word = stem_
                flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if cls._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if cls._measure(word) == 1 and cls._ends_cvc(word):
                return word + "e"
        return word

    @classmethod
    def _step1c(cls, word: str) -> str:
        if word.endswith("y") and cls._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    @classmethod
    def _step2(cls, word: str) -> str:
        for suffix, replacement in cls._STEP2_SUFFIXES:
            if word.endswith(suffix):
                stem_ = word[: -len(suffix)]
                if cls._measure(stem_) > 0:
                    return stem_ + replacement
                return word
        return word

    _STEP3_SUFFIXES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    @classmethod
    def _step3(cls, word: str) -> str:
        for suffix, replacement in cls._STEP3_SUFFIXES:
            if word.endswith(suffix):
                stem_ = word[: -len(suffix)]
                if cls._measure(stem_) > 0:
                    return stem_ + replacement
                return word
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    @classmethod
    def _step4(cls, word: str) -> str:
        for suffix in cls._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem_ = word[: -len(suffix)]
                if cls._measure(stem_) > 1:
                    return stem_
                return word
        if word.endswith("ion"):
            stem_ = word[:-3]
            if cls._measure(stem_) > 1 and stem_ and stem_[-1] in "st":
                return stem_
        return word

    @classmethod
    def _step5a(cls, word: str) -> str:
        if word.endswith("e"):
            stem_ = word[:-1]
            m = cls._measure(stem_)
            if m > 1:
                return stem_
            if m == 1 and not cls._ends_cvc(stem_):
                return stem_
        return word

    @classmethod
    def _step5b(cls, word: str) -> str:
        if (
            word.endswith("ll")
            and cls._measure(word) > 1
        ):
            return word[:-1]
        return word

    # ------------------------------------------------------------------

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (expects lowercase input)."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word


_DEFAULT_STEMMER = PorterStemmer()


def stem(word: str) -> str:
    """Module-level convenience wrapper around :class:`PorterStemmer`."""
    return _DEFAULT_STEMMER.stem(word)
