"""Document preprocessing substrate (paper §2, "Document preprocessing").

The pipeline mirrors the paper: stop words and user-specified sensitive words
are filtered out, remaining words are normalized with the Porter stemming
algorithm, and documents become sparse multidimensional feature vectors whose
attribute ids are word ids and whose values are word weights.
"""

from repro.text.tokenizer import tokenize, sentence_split
from repro.text.stopwords import ENGLISH_STOP_WORDS, is_stop_word
from repro.text.sensitive import SensitiveWordFilter
from repro.text.porter import PorterStemmer, stem
from repro.text.lexicon import Lexicon
from repro.text.vectorizer import (
    BagOfWordsVectorizer,
    TfidfTransformer,
    PreprocessingPipeline,
)

__all__ = [
    "tokenize",
    "sentence_split",
    "ENGLISH_STOP_WORDS",
    "is_stop_word",
    "SensitiveWordFilter",
    "PorterStemmer",
    "stem",
    "Lexicon",
    "BagOfWordsVectorizer",
    "TfidfTransformer",
    "PreprocessingPipeline",
]
