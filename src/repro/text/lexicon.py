"""Word <-> id lexicon.

The paper represents each document as a vector indexed by word id; the lexicon
is the shared mapping from (stemmed) words to those ids.  In the distributed
setting every peer derives ids the same way, so the lexicon supports a
*hashed* mode (stable id = hash of the word modulo the feature-space size)
in addition to the *growing* mode used by centralized preprocessing.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Dict, Iterable, List, Optional

from repro.errors import VocabularyError


def stable_word_id(word: str, dimension: int) -> int:
    """Deterministic feature id for ``word`` in a ``dimension``-sized space.

    Uses blake2b so ids are stable across processes and Python hash
    randomization — peers must agree on ids without communicating.
    """
    digest = hashlib.blake2b(word.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % dimension


class Lexicon:
    """A word <-> id mapping with document frequencies.

    Two modes:

    - *growing* (default): new words get the next free id.  Used by the
      centralized baseline and by tests that need compact contiguous ids.
    - *frozen*: after :meth:`freeze`, unknown words map to ``None`` and are
      dropped from vectors, which is how test documents with unseen words are
      handled.
    """

    def __init__(self) -> None:
        self._word_to_id: Dict[str, int] = {}
        self._id_to_word: List[str] = []
        self._doc_frequency: Counter = Counter()
        self._num_documents = 0
        self._frozen = False

    # -- building -----------------------------------------------------------

    def add_document(self, tokens: Iterable[str]) -> List[int]:
        """Register a document's tokens; returns their ids (with repeats)."""
        ids: List[int] = []
        seen_words = set()
        for token in tokens:
            word_id = self._get_or_add(token)
            if word_id is None:
                continue
            ids.append(word_id)
            seen_words.add(token)
        self._num_documents += 1
        for word in seen_words:
            self._doc_frequency[word] += 1
        return ids

    def _get_or_add(self, word: str) -> Optional[int]:
        existing = self._word_to_id.get(word)
        if existing is not None:
            return existing
        if self._frozen:
            return None
        new_id = len(self._id_to_word)
        self._word_to_id[word] = new_id
        self._id_to_word.append(word)
        return new_id

    def freeze(self) -> None:
        """Stop admitting new words; unknown words become out-of-vocabulary."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    # -- lookup ---------------------------------------------------------------

    def id_of(self, word: str) -> Optional[int]:
        """Id for ``word`` or None if out of vocabulary."""
        return self._word_to_id.get(word)

    def word_of(self, word_id: int) -> str:
        if not 0 <= word_id < len(self._id_to_word):
            raise VocabularyError(f"word id {word_id} out of range")
        return self._id_to_word[word_id]

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __len__(self) -> int:
        return len(self._id_to_word)

    @property
    def num_documents(self) -> int:
        return self._num_documents

    def document_frequency(self, word: str) -> int:
        """Number of registered documents containing ``word``."""
        return self._doc_frequency.get(word, 0)

    def document_frequency_by_id(self, word_id: int) -> int:
        return self._doc_frequency.get(self.word_of(word_id), 0)

    # -- pruning ----------------------------------------------------------------

    def prune(self, min_df: int = 1, max_df_fraction: float = 1.0) -> "Lexicon":
        """Return a new compact lexicon keeping words with df in range.

        ``min_df`` removes hapax noise; ``max_df_fraction`` removes corpus-wide
        boilerplate that stop-word lists missed.  Ids are renumbered densely.
        """
        if self._num_documents == 0:
            raise VocabularyError("cannot prune an empty lexicon")
        max_df = max_df_fraction * self._num_documents
        pruned = Lexicon()
        pruned._num_documents = self._num_documents
        for word in self._id_to_word:
            df = self._doc_frequency.get(word, 0)
            if min_df <= df <= max_df:
                pruned._get_or_add(word)
                pruned._doc_frequency[word] = df
        return pruned

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "frozen" if self._frozen else "growing"
        return f"Lexicon(size={len(self)}, docs={self._num_documents}, {state})"
