"""English stop-word list.

The paper filters "stop words that contain little recognition values (e.g.,
a, for, and, not, etc)".  This module bundles a standard English stop-word
list (the classic SMART/Glasgow union trimmed to common function words) so the
library works fully offline.
"""

from __future__ import annotations

from typing import FrozenSet

ENGLISH_STOP_WORDS: FrozenSet[str] = frozenset(
    """
    a about above after again against all am an and any are aren't as at be
    because been before being below between both but by can cannot can't
    could couldn't did didn't do does doesn't doing don't down during each
    few for from further had hadn't has hasn't have haven't having he he'd
    he'll he's her here here's hers herself him himself his how how's i i'd
    i'll i'm i've if in into is isn't it it's its itself let's me more most
    mustn't my myself no nor not of off on once only or other ought our ours
    ourselves out over own same shan't she she'd she'll she's should
    shouldn't so some such than that that's the their theirs them themselves
    then there there's these they they'd they'll they're they've this those
    through to too under until up very was wasn't we we'd we'll we're we've
    were weren't what what's when when's where where's which while who who's
    whom why why's with won't would wouldn't you you'd you'll you're you've
    your yours yourself yourselves
    also among anyone anything became become becomes becoming beside besides
    beyond could done else elsewhere ever every everyone everything get gets
    got however indeed instead just like made make makes many may maybe
    meanwhile might mine moreover much must neither never nevertheless next
    none nothing now nowhere often one onto others otherwise per perhaps
    please put rather said say says seem seemed seeming seems several shall
    since six somehow someone something sometime sometimes somewhere still
    take takes ten thereafter thereby therefore therein thus together toward
    towards two upon us use used uses using via was way well went what
    whatever whence whenever whereas whereby wherein whether will within
    without yet
    """.split()
)


def is_stop_word(token: str) -> bool:
    """Return True if ``token`` (already lowercased) is an English stop word."""
    return token in ENGLISH_STOP_WORDS


def remove_stop_words(tokens: list[str]) -> list[str]:
    """Filter stop words out of a token list, preserving order."""
    return [token for token in tokens if token not in ENGLISH_STOP_WORDS]
