"""User-specified sensitive-word filtering.

The paper's preprocessing removes, besides stop words, "user-specified
sensitive words" so they never enter the feature vectors that may be shared
with other peers.  :class:`SensitiveWordFilter` implements that contract:
exact words and simple ``*``-suffix patterns can be registered, and filtering
is applied *before* stemming so users can reason about surface forms.
"""

from __future__ import annotations

from typing import Iterable, List, Set


class SensitiveWordFilter:
    """Removes user-registered sensitive words from token streams.

    Parameters
    ----------
    words:
        Initial iterable of sensitive words.  Words ending in ``*`` are
        treated as prefix patterns (``"salar*"`` blocks ``salary`` and
        ``salaries``).
    """

    def __init__(self, words: Iterable[str] = ()) -> None:
        self._exact: Set[str] = set()
        self._prefixes: List[str] = []
        for word in words:
            self.add(word)

    def add(self, word: str) -> None:
        """Register a sensitive word or ``prefix*`` pattern."""
        cleaned = word.strip().lower()
        if not cleaned:
            return
        if cleaned.endswith("*"):
            prefix = cleaned[:-1]
            if prefix and prefix not in self._prefixes:
                self._prefixes.append(prefix)
        else:
            self._exact.add(cleaned)

    def remove(self, word: str) -> None:
        """Unregister a previously added word or pattern (no-op if absent)."""
        cleaned = word.strip().lower()
        if cleaned.endswith("*"):
            prefix = cleaned[:-1]
            if prefix in self._prefixes:
                self._prefixes.remove(prefix)
        else:
            self._exact.discard(cleaned)

    def is_sensitive(self, token: str) -> bool:
        """Return True if ``token`` must not leave this peer."""
        if token in self._exact:
            return True
        return any(token.startswith(prefix) for prefix in self._prefixes)

    def filter(self, tokens: Iterable[str]) -> List[str]:
        """Return ``tokens`` with every sensitive token removed."""
        return [token for token in tokens if not self.is_sensitive(token)]

    def __len__(self) -> int:
        return len(self._exact) + len(self._prefixes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SensitiveWordFilter(exact={len(self._exact)}, "
            f"prefixes={len(self._prefixes)})"
        )
